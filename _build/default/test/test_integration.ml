(* End-to-end properties tying the measured complexities to the paper's
   claims: subquadratic work when d = o(t), graceful degradation in d,
   the d = Theta(t) quadratic wall, Lemma 6.1's d-contention bound, and
   randomized-run reproducibility. *)

open Doall_core
open Doall_sim
open Doall_perms

let check = Alcotest.(check bool)

let work ?(seed = 1) ~algo ~adv ~p ~t ~d () =
  (Runner.run ~seed ~algo ~adv ~p ~t ~d ()).Runner.metrics.Metrics.work

let test_subquadratic_when_d_small () =
  (* With d = 1 every coordinated algorithm must beat the oblivious
     p*t by a wide margin at p = t = 64. *)
  let p = 64 and t = 64 in
  let quadratic = p * t in
  List.iter
    (fun algo ->
      let w = work ~algo ~adv:"max-delay" ~p ~t ~d:1 () in
      check
        (Printf.sprintf "%s subquadratic: %d < %d/4" algo w quadratic)
        true
        (w < quadratic / 4))
    [ "da-q2"; "da-q4"; "paran1"; "paran2"; "padet" ]

let test_degrades_gracefully () =
  (* Work under max-delay is (weakly) worse as d grows, allowing small
     noise from discretization. *)
  List.iter
    (fun algo ->
      let w1 = work ~algo ~adv:"max-delay" ~p:32 ~t:64 ~d:1 () in
      let w64 = work ~algo ~adv:"max-delay" ~p:32 ~t:64 ~d:64 () in
      check
        (Printf.sprintf "%s: w(d=64)=%d >= w(d=1)=%d" algo w64 w1)
        true
        (float_of_int w64 >= 0.95 *. float_of_int w1))
    [ "da-q2"; "da-q4"; "paran1"; "padet" ]

let test_quadratic_wall () =
  (* Proposition 2.2: when d >= t nothing can beat Theta(p*t) against an
     adversary that withholds all messages until the end: under max-delay
     with d = t, processors effectively work alone. Work should be a
     constant fraction of p*t. *)
  let p = 16 and t = 64 in
  List.iter
    (fun algo ->
      let w = work ~algo ~adv:"max-delay" ~p ~t ~d:t () in
      check
        (Printf.sprintf "%s at d=t: %d >= pt/8" algo w)
        true
        (w >= p * t / 8))
    [ "paran1"; "padet" ]

let test_beats_trivial_except_at_wall () =
  let p = 32 and t = 32 in
  let w_triv = work ~algo:"trivial" ~adv:"max-delay" ~p ~t ~d:1 () in
  List.iter
    (fun algo ->
      let w = work ~algo ~adv:"max-delay" ~p ~t ~d:1 () in
      check (Printf.sprintf "%s beats trivial at d=1" algo) true (w < w_triv))
    [ "da-q2"; "paran1"; "padet" ]

let test_lemma_6_1_bound () =
  (* Work of PaDet with explicit psi is bounded by (d)-Cont(psi) against
     a d-adversary (Lemma 6.1). Exact d-contention needs n <= 8. *)
  let n = 8 in
  let psi = Gen.seeded_list ~seed:123 ~n ~count:n in
  let algo = Algo_pa.make_det ~psi () in
  List.iter
    (fun (adv, d) ->
      let cfg = Config.make ~seed:4 ~p:n ~t:n () in
      let adversary =
        (Runner.find_adv adv).Runner.instantiate ~p:n ~t:n ~d
      in
      let m = Engine.run_packed algo cfg ~d ~adversary () in
      check "completed" true m.Metrics.completed;
      let dcont = Contention.d_contention_exact ~d psi in
      (* task-performing steps = executions; Lemma 6.1 bounds those.
         Allow the +p halt steps. *)
      check
        (Printf.sprintf "%s d=%d: executions %d <= dCont %d" adv d
           m.Metrics.executions dcont)
        true
        (m.Metrics.executions <= dcont))
    [ ("fair", 1); ("max-delay", 2); ("max-delay", 4); ("uniform-delay", 3);
      ("lb-rand", 2); ("batch", 1) ]

let test_randomized_reproducible_with_seed () =
  let r1 = Runner.run ~seed:9 ~algo:"paran2" ~adv:"random-half" ~p:8 ~t:32 ~d:4 () in
  let r2 = Runner.run ~seed:9 ~algo:"paran2" ~adv:"random-half" ~p:8 ~t:32 ~d:4 () in
  check "bitwise-identical metrics" true
    (r1.Runner.metrics = r2.Runner.metrics)

let test_da_q_tradeoff_exists () =
  (* Larger q lowers the traversal depth; at least the family must be
     well-ordered enough that some q in 2..8 beats q=2 on a big fair
     instance, demonstrating the p^epsilon knob. *)
  let p = 64 and t = 64 in
  let w2 = work ~algo:"da-q2" ~adv:"fair" ~p ~t ~d:1 () in
  let better =
    List.exists
      (fun q ->
        work ~algo:(Printf.sprintf "da-q%d" q) ~adv:"fair" ~p ~t ~d:1 () < w2)
      [ 3; 4; 5; 6; 7; 8 ]
  in
  check "some q beats q=2" true better

let test_work_scales_with_t_not_explosively () =
  (* Fixed p and d: doubling t should not quadruple work for PA (bound is
     ~ t log p + p d log(2+t/d)). *)
  let w64 = work ~algo:"padet" ~adv:"uniform-delay" ~p:16 ~t:64 ~d:4 () in
  let w128 = work ~algo:"padet" ~adv:"uniform-delay" ~p:16 ~t:128 ~d:4 () in
  check
    (Printf.sprintf "w(t=128)=%d <= 3.5 * w(t=64)=%d" w128 w64)
    true
    (float_of_int w128 <= 3.5 *. float_of_int w64)

let test_effort_identity () =
  let m = (Runner.run ~algo:"paran1" ~adv:"fair" ~p:6 ~t:24 ~d:2 ()).Runner.metrics in
  Alcotest.(check int) "effort = W + M"
    (m.Metrics.work + m.Metrics.messages)
    (Metrics.effort m)

let test_crash_storm_correctness () =
  (* Repeated random crash patterns with a survivor: always completes,
     and the survivor alone may end up doing everything. *)
  List.iter
    (fun seed ->
      let r =
        Runner.run ~seed ~algo:"da-q4" ~adv:"crash-staggered" ~p:8 ~t:32 ~d:4 ()
      in
      check "completed under crash storm" true
        r.Runner.metrics.Metrics.completed)
    [ 1; 2; 3; 4; 5 ]

let test_scale_smoke () =
  (* Larger instances than the benches use: no overflow, no blowup, the
     delay-sensitive ordering intact. *)
  let p = 128 and t = 1024 and d = 32 in
  List.iter
    (fun algo ->
      let r = Runner.run ~seed:1 ~algo ~adv:"uniform-delay" ~p ~t ~d () in
      let m = r.Runner.metrics in
      if not m.Metrics.completed then Alcotest.failf "%s timed out" algo;
      if m.Metrics.work >= p * t then
        Alcotest.failf "%s not subquadratic at scale: W=%d >= %d" algo
          m.Metrics.work (p * t))
    [ "da-q4"; "paran1"; "padet" ]

let suite =
  [
    Alcotest.test_case "scale smoke (p=128, t=1024)" `Slow test_scale_smoke;
    Alcotest.test_case "subquadratic when d small" `Slow
      test_subquadratic_when_d_small;
    Alcotest.test_case "graceful degradation in d" `Slow
      test_degrades_gracefully;
    Alcotest.test_case "quadratic wall at d = t" `Quick test_quadratic_wall;
    Alcotest.test_case "beats trivial at d=1" `Quick
      test_beats_trivial_except_at_wall;
    Alcotest.test_case "Lemma 6.1: executions <= d-contention" `Quick
      test_lemma_6_1_bound;
    Alcotest.test_case "randomized runs reproducible by seed" `Quick
      test_randomized_reproducible_with_seed;
    Alcotest.test_case "DA q trade-off visible" `Slow test_da_q_tradeoff_exists;
    Alcotest.test_case "work growth in t is tame" `Quick
      test_work_scales_with_t_not_explosively;
    Alcotest.test_case "effort identity" `Quick test_effort_identity;
    Alcotest.test_case "crash storms" `Quick test_crash_storm_correctness;
  ]
