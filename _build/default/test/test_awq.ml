(* The quorum-replicated emulation route (Section 1.1): correctness under
   quorum-preserving adversity, the monotone-register optimizations, the
   delay sensitivity of memory operations, and the paper's caveat — no
   liveness once crashes destroy the quorum. *)

open Doall_sim
open Doall_core
open Doall_quorum

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run ?(seed = 1) ?(p = 8) ?(t = 32) ?(d = 3) ?max_time ?(algo = Algo_awq.make ())
    adv_name =
  let adversary = (Runner.find_adv adv_name).Runner.instantiate ~p ~t ~d in
  let cfg = Config.make ~seed ~p ~t () in
  Engine.run_packed algo cfg ~d ~adversary ?max_time ()

let test_quorum_arithmetic () =
  let q = Quorum.majority ~p:7 in
  check_int "threshold" 4 (Quorum.threshold q);
  check "intersecting" true (Quorum.intersecting q);
  check "viable at 4" true (Quorum.viable_count q ~live:4);
  check "not viable at 3" false (Quorum.viable_count q ~live:3);
  check "satisfied with 4 responders" true
    (Quorum.satisfied q (Bitset.of_list 7 [ 0; 2; 4; 6 ]));
  check "unsatisfied with 3" false
    (Quorum.satisfied q (Bitset.of_list 7 [ 0; 2; 4 ]));
  let weak = Quorum.of_threshold ~p:7 ~threshold:3 in
  check "non-intersecting flagged" false (Quorum.intersecting weak);
  Alcotest.check_raises "bad threshold"
    (Invalid_argument "Quorum.of_threshold: threshold must be in 1..p")
    (fun () -> ignore (Quorum.of_threshold ~p:4 ~threshold:5))

let test_grid_quorum () =
  (* 3x3 grid over pids 0..8: row r = {3r, 3r+1, 3r+2}, col c = {c, c+3,
     c+6}. A quorum needs a full row AND a full column. *)
  let g = Quorum.grid ~p:9 ~rows:3 ~cols:3 in
  check "intersecting" true (Quorum.intersecting g);
  check_int "smallest quorum size" 5 (Quorum.threshold g);
  check "row 0 + col 0" true
    (Quorum.satisfied g (Bitset.of_list 9 [ 0; 1; 2; 3; 6 ]));
  check "row without column" false
    (Quorum.satisfied g (Bitset.of_list 9 [ 0; 1; 2 ]));
  check "column without row" false
    (Quorum.satisfied g (Bitset.of_list 9 [ 0; 3; 6 ]));
  check "everything" true
    (Quorum.satisfied g (Bitset.of_list 9 (List.init 9 Fun.id)));
  (* losing one whole row kills all quorums even with 6 survivors *)
  check "row loss fatal despite 6 live" false
    (Quorum.satisfied g (Bitset.of_list 9 [ 0; 1; 2; 3; 4; 5 ]));
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Quorum.grid: rows * cols must equal p") (fun () ->
      ignore (Quorum.grid ~p:10 ~rows:3 ~cols:3))

let test_square_grid () =
  check "p=9 has a square grid" true (Quorum.square_grid ~p:9 <> None);
  check "p=8 does not" true (Quorum.square_grid ~p:8 = None)

let test_awq_with_grid_quorum () =
  let m =
    run ~p:9 ~t:27
      ~algo:
        (Algo_awq.make
           ~quorum:(fun ~p ->
             match Quorum.square_grid ~p with
             | Some g -> g
             | None -> Quorum.majority ~p)
           ())
      "uniform-delay"
  in
  check "grid-quorum AWQ completes" true m.Metrics.completed

let test_awq_grid_row_loss_stalls () =
  (* crash one full row of a 3x3 grid: 6 survivors, but no quorum. *)
  let adv =
    Doall_adversary.Crash.into ~name:"kill-row"
      (Doall_adversary.Crash.at_time ~time:2 ~pids:[ 0; 1; 2 ])
  in
  let algo =
    Algo_awq.make
      ~quorum:(fun ~p ->
        match Quorum.square_grid ~p with
        | Some g -> g
        | None -> Quorum.majority ~p)
      ()
  in
  let cfg = Config.make ~seed:1 ~p:9 ~t:27 () in
  let m = Engine.run_packed algo cfg ~d:3 ~adversary:adv ~max_time:5_000 () in
  check "row loss stalls the grid system" false m.Metrics.completed;
  (* while a majority system tolerates the same crash pattern *)
  let cfg = Config.make ~seed:1 ~p:9 ~t:27 () in
  let adv2 =
    Doall_adversary.Crash.into ~name:"kill-row2"
      (Doall_adversary.Crash.at_time ~time:2 ~pids:[ 0; 1; 2 ])
  in
  let m2 =
    Engine.run_packed (Algo_awq.make ()) cfg ~d:3 ~adversary:adv2 ()
  in
  check "majority survives the same crashes" true m2.Metrics.completed

let test_completes_under_benign_adversaries () =
  List.iter
    (fun adv ->
      let m = run adv in
      check (adv ^ " completes") true m.Metrics.completed;
      check (adv ^ " executions >= t") true (m.Metrics.executions >= 32))
    [ "fair"; "max-delay"; "uniform-delay"; "round-robin"; "harmonic";
      "random-half"; "batch"; "lb-det"; "lb-rand" ]

let test_shapes () =
  List.iter
    (fun (p, t) ->
      List.iter
        (fun q ->
          let m = run ~p ~t ~algo:(Algo_awq.make ~q ()) "uniform-delay" in
          if not m.Metrics.completed then
            Alcotest.failf "awq-q%d p=%d t=%d did not complete" q p t)
        [ 2; 4 ])
    [ (1, 1); (1, 9); (3, 3); (5, 20); (9, 9); (16, 8) ]

let test_knowledge_soundness () =
  let (module A : Algorithm.S) = Algo_awq.make () in
  let module E = Engine.Make (A) in
  let cfg = Config.make ~seed:3 ~p:6 ~t:24 () in
  let adversary = (Runner.find_adv "random-half").Runner.instantiate ~p:6 ~t:24 ~d:4 in
  let eng = E.create cfg ~d:4 ~adversary in
  let m = E.run eng in
  check "completed" true m.Metrics.completed;
  for pid = 0 to 5 do
    check "knowledge sound" true
      (Bitset.subset (A.done_tasks (E.state eng pid)) (E.global_done eng))
  done

let test_minority_crash_survives () =
  (* p=9, 4 crashes: majority of 5 remains, the system must finish. *)
  let m = run ~p:9 ~t:36 "crash-half" in
  check "completes with minority crashed" true m.Metrics.completed

let test_majority_crash_stalls () =
  (* The paper's caveat: quorum destroyed -> Do-All never solved.
     crash-all-but-one leaves 1 < majority(8) alive. *)
  let m = run ~max_time:5_000 "crash-all-but-one" in
  check "does NOT complete" false m.Metrics.completed;
  (* ... while a survivor-liveness algorithm on the same run completes *)
  let m2 = run ~algo:(Algo_da.make ()) "crash-all-but-one" in
  check "DA completes on the same schedule" true m2.Metrics.completed

let test_solo_stalls () =
  (* A single stepping processor cannot gather a quorum. *)
  let m = run ~max_time:5_000 "solo" in
  check "solo starves the quorum" false m.Metrics.completed

let test_delay_sensitivity_of_ops () =
  (* Each memory op waits ~d; work must grow markedly with d, much
     faster than DA's (DA reads locally). *)
  let awq d = (run ~t:64 ~d "max-delay").Metrics.work in
  let da d =
    (run ~t:64 ~d ~algo:(Algo_da.make ()) "max-delay").Metrics.work
  in
  let awq_growth = float_of_int (awq 16) /. float_of_int (awq 1) in
  let da_growth = float_of_int (da 16) /. float_of_int (da 1) in
  check
    (Printf.sprintf "awq growth %.2f > da growth %.2f" awq_growth da_growth)
    true
    (awq_growth > da_growth)

let test_message_complexity_structure () =
  (* Requests are multicast (p-1), responses unicast: M is dominated by
     ops * (2p - 2); just check M <= p * W as for DA-family algorithms. *)
  let m = run ~p:8 ~t:32 "uniform-delay" in
  check "M <= p*W" true (m.Metrics.messages <= 8 * m.Metrics.work)

let test_registry_integration () =
  Register.install ();
  let spec = Runner.find_algo "awq-q4" in
  check "registered" true (spec.Runner.algo_name = "awq-q4");
  check "liveness flag" true (spec.Runner.liveness = `Needs_quorum);
  let r = Runner.run ~algo:"awq-q4" ~adv:"fair" ~p:6 ~t:18 ~d:2 () in
  check "runs by name" true r.Runner.metrics.Metrics.completed

let test_register_idempotent () =
  Register.install ();
  Register.install ();
  let names =
    List.filter
      (fun s -> String.length s.Runner.algo_name >= 3
                && String.sub s.Runner.algo_name 0 3 = "awq")
      (Runner.all_algorithms ())
  in
  check_int "exactly four awq entries" 4 (List.length names)

let test_abd_protocol_correct () =
  List.iter
    (fun adv ->
      let m = run ~algo:(Algo_awq.make ~protocol:`Abd ()) adv in
      check ("abd " ^ adv ^ " completes") true m.Metrics.completed)
    [ "fair"; "max-delay"; "uniform-delay"; "round-robin"; "random-half" ]

let test_abd_costs_about_double () =
  let w proto =
    (run ~t:64 ~d:8 ~algo:(Algo_awq.make ~protocol:proto ()) "max-delay")
      .Metrics.work
  in
  let mono = w `Monotone and abd = w `Abd in
  let ratio = float_of_int abd /. float_of_int mono in
  check
    (Printf.sprintf "abd %d ~ 2x monotone %d (ratio %.2f)" abd mono ratio)
    true
    (ratio > 1.4 && ratio < 3.0)

let test_abd_knowledge_soundness () =
  let (module A : Algorithm.S) = Algo_awq.make ~protocol:`Abd () in
  let module E = Engine.Make (A) in
  let cfg = Config.make ~seed:8 ~p:5 ~t:20 () in
  let adversary =
    (Runner.find_adv "uniform-delay").Runner.instantiate ~p:5 ~t:20 ~d:3
  in
  let eng = E.create cfg ~d:3 ~adversary in
  let m = E.run eng in
  check "completed" true m.Metrics.completed;
  for pid = 0 to 4 do
    check "sound" true
      (Bitset.subset (A.done_tasks (E.state eng pid)) (E.global_done eng))
  done

let test_builtin_names_protected () =
  check "cannot shadow built-in" true
    (try
       Runner.register_algorithm
         {
           Runner.algo_name = "trivial";
           doc = "";
           make = (fun () -> Algo_trivial.make ());
           deterministic = true;
           liveness = `Any_survivor;
         };
       false
     with Invalid_argument _ -> true)

let test_deterministic_reproducible () =
  let w seed = (run ~seed "max-delay").Metrics.work in
  check_int "seed-insensitive" (w 1) (w 2)

let suite =
  [
    Alcotest.test_case "quorum arithmetic" `Quick test_quorum_arithmetic;
    Alcotest.test_case "grid quorum" `Quick test_grid_quorum;
    Alcotest.test_case "square grid" `Quick test_square_grid;
    Alcotest.test_case "AWQ with grid quorum" `Quick test_awq_with_grid_quorum;
    Alcotest.test_case "grid row loss stalls" `Quick
      test_awq_grid_row_loss_stalls;
    Alcotest.test_case "completes under benign adversaries" `Quick
      test_completes_under_benign_adversaries;
    Alcotest.test_case "instance shapes" `Quick test_shapes;
    Alcotest.test_case "knowledge soundness" `Quick test_knowledge_soundness;
    Alcotest.test_case "minority crash survives" `Quick
      test_minority_crash_survives;
    Alcotest.test_case "majority crash stalls (paper's caveat)" `Quick
      test_majority_crash_stalls;
    Alcotest.test_case "solo starves the quorum" `Quick test_solo_stalls;
    Alcotest.test_case "memory ops are delay-sensitive" `Quick
      test_delay_sensitivity_of_ops;
    Alcotest.test_case "message structure" `Quick
      test_message_complexity_structure;
    Alcotest.test_case "registry integration" `Quick test_registry_integration;
    Alcotest.test_case "register idempotent" `Quick test_register_idempotent;
    Alcotest.test_case "ABD protocol correct" `Quick test_abd_protocol_correct;
    Alcotest.test_case "ABD costs ~2x monotone" `Quick
      test_abd_costs_about_double;
    Alcotest.test_case "ABD knowledge soundness" `Quick
      test_abd_knowledge_soundness;
    Alcotest.test_case "built-in names protected" `Quick
      test_builtin_names_protected;
    Alcotest.test_case "deterministic reproducible" `Quick
      test_deterministic_reproducible;
  ]
