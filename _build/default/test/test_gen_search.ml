open Doall_perms
open Doall_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_random_list_shape () =
  let rng = Rng.create 31 in
  let psi = Gen.random_list ~rng ~n:7 ~count:4 in
  check_int "count" 4 (List.length psi);
  List.iter (fun pi -> check_int "size" 7 (Perm.size pi)) psi

let test_seeded_list_deterministic () =
  let a = Gen.seeded_list ~seed:99 ~n:8 ~count:5 in
  let b = Gen.seeded_list ~seed:99 ~n:8 ~count:5 in
  check "same seed, same list" true (List.for_all2 Perm.equal a b);
  let c = Gen.seeded_list ~seed:100 ~n:8 ~count:5 in
  check "different seed, different list" false (List.for_all2 Perm.equal a c)

let test_rotation_list () =
  let psi = Gen.rotation_list ~n:4 ~count:4 in
  List.iteri
    (fun u pi ->
      check_int (Printf.sprintf "pi_%d(0)" u) u (Perm.apply pi 0))
    psi

let test_exhaustive_n2 () =
  let cert = Search.exhaustive 2 in
  check_int "two schedules" 2 (List.length cert.Search.list);
  (* Optimum for n=2 is <id, reverse> or symmetric: contention 3. *)
  check_int "optimal contention" 3 cert.Search.contention

let test_exhaustive_n3 () =
  let cert = Search.exhaustive 3 in
  check_int "three schedules" 3 (List.length cert.Search.list);
  check "meets Lemma 4.1 bound" true
    (float_of_int cert.Search.contention <= cert.Search.bound);
  (* sanity: strictly better than the all-identity list (contention 9) *)
  check "beats identity list" true (cert.Search.contention < 9)

let test_certified_range () =
  let rng = Rng.create 32 in
  List.iter
    (fun n ->
      let cert = Search.certified ~rng n in
      check_int "list length" n (List.length cert.Search.list);
      check "certified under bound" true
        (float_of_int cert.Search.contention <= cert.Search.bound);
      check_int "exact recomputation agrees" cert.Search.contention
        (Contention.contention_exact cert.Search.list))
    [ 2; 3; 4; 5 ]

let test_certified_beats_or_ties_random () =
  let rng = Rng.create 33 in
  let n = 4 in
  let cert = Search.certified ~rng n in
  let random_cont =
    Contention.contention_exact (Gen.random_list ~rng ~n ~count:n)
  in
  check "search at least as good as one random draw" true
    (cert.Search.contention <= random_cont)

let test_improve_never_worsens () =
  let rng = Rng.create 34 in
  let n = 5 in
  let psi0 = Gen.random_list ~rng ~n ~count:n in
  let before = Contention.contention_exact psi0 in
  let _, after = Search.improve ~steps:100 ~rng psi0 in
  check "improve monotone" true (after <= before)

let test_certified_bad_n () =
  let rng = Rng.create 35 in
  Alcotest.check_raises "n too large"
    (Invalid_argument "Search.certified: requires 2 <= n <= 8") (fun () ->
      ignore (Search.certified ~rng 9))

let suite =
  [
    Alcotest.test_case "random list shape" `Quick test_random_list_shape;
    Alcotest.test_case "seeded list deterministic" `Quick
      test_seeded_list_deterministic;
    Alcotest.test_case "rotation list" `Quick test_rotation_list;
    Alcotest.test_case "exhaustive n=2 optimum" `Quick test_exhaustive_n2;
    Alcotest.test_case "exhaustive n=3" `Quick test_exhaustive_n3;
    Alcotest.test_case "certified for n=2..5" `Slow test_certified_range;
    Alcotest.test_case "certified vs random draw" `Quick
      test_certified_beats_or_ties_random;
    Alcotest.test_case "improve never worsens" `Quick
      test_improve_never_worsens;
    Alcotest.test_case "certified rejects bad n" `Quick test_certified_bad_n;
  ]
