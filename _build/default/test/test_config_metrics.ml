open Doall_sim
open Doall_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_config_validation () =
  Alcotest.check_raises "p=0" (Invalid_argument "Config.make: p must be positive")
    (fun () -> ignore (Config.make ~p:0 ~t:4 ()));
  Alcotest.check_raises "t=0" (Invalid_argument "Config.make: t must be positive")
    (fun () -> ignore (Config.make ~p:4 ~t:0 ()))

let test_config_with_seed () =
  let cfg = Config.make ~seed:1 ~p:2 ~t:3 () in
  let cfg' = Config.with_seed cfg 99 in
  check_int "seed replaced" 99 cfg'.Config.seed;
  check_int "p kept" 2 cfg'.Config.p;
  check_int "original untouched" 1 cfg.Config.seed

let test_config_pp () =
  let s = Format.asprintf "%a" Config.pp (Config.make ~seed:7 ~p:3 ~t:9 ()) in
  check "mentions fields" true
    (String.length s > 0
     && (try ignore (Str.search_forward (Str.regexp "p=3") s 0); true
         with Not_found -> false))

let test_metrics_pp_forms () =
  let m = (Runner.run ~algo:"padet" ~adv:"fair" ~p:3 ~t:9 ~d:1 ()).Runner.metrics in
  let one = Format.asprintf "%a" Metrics.pp m in
  let wide = Format.asprintf "%a" Metrics.pp_wide m in
  check "one-line is one line" true
    (not (String.contains one '\n'));
  check "wide mentions per-processor" true (String.length wide > String.length one)

let test_relational_invariants () =
  (* engine-level relations that must hold for every completed run *)
  List.iter
    (fun (algo, adv, p, t, d) ->
      let m = (Runner.run ~seed:3 ~algo ~adv ~p ~t ~d ()).Runner.metrics in
      check "completed" true m.Metrics.completed;
      (* sigma+1 time units, at most p steps each *)
      check "work <= p * (sigma + 1)" true
        (m.Metrics.work <= m.Metrics.p * (m.Metrics.sigma + 1));
      (* at least one step per time unit *)
      check "work >= sigma + 1" true (m.Metrics.work >= m.Metrics.sigma + 1);
      check "executions within work" true
        (m.Metrics.executions <= m.Metrics.work);
      check "redundant consistent" true
        (Metrics.redundant m = m.Metrics.executions - m.Metrics.t);
      check "effort consistent" true
        (Metrics.effort m = m.Metrics.work + m.Metrics.messages);
      check "per-proc sums" true
        (Array.fold_left ( + ) 0 m.Metrics.per_proc_work = m.Metrics.work))
    [
      ("trivial", "fair", 3, 9, 1);
      ("da-q3", "uniform-delay", 7, 21, 4);
      ("paran2", "harmonic", 5, 25, 3);
      ("padet", "lb-rand", 6, 12, 2);
      ("coord", "round-robin", 6, 30, 5);
    ]

let test_d_recorded_as_given () =
  let m = (Runner.run ~algo:"padet" ~adv:"fair" ~p:2 ~t:4 ~d:7 ()).Runner.metrics in
  check_int "d carried through" 7 m.Metrics.d

let suite =
  [
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "config with_seed" `Quick test_config_with_seed;
    Alcotest.test_case "config pp" `Quick test_config_pp;
    Alcotest.test_case "metrics pp forms" `Quick test_metrics_pp_forms;
    Alcotest.test_case "relational invariants" `Quick
      test_relational_invariants;
    Alcotest.test_case "d recorded" `Quick test_d_recorded_as_given;
  ]
