open Doall_sharedmem
open Doall_perms

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_fair_completes () =
  List.iter
    (fun (p, t) ->
      let m = Write_all.run ~p ~t () in
      if not m.Write_all.completed then
        Alcotest.failf "p=%d t=%d did not complete" p t;
      if m.Write_all.executions < t then Alcotest.failf "missed tasks")
    [ (1, 1); (1, 9); (4, 4); (8, 64); (16, 16); (7, 23); (32, 8) ]

let test_q_variants () =
  List.iter
    (fun q ->
      let m = Write_all.run ~q ~p:9 ~t:36 () in
      check (Printf.sprintf "q=%d completes" q) true m.Write_all.completed)
    [ 2; 3; 4; 5; 8 ]

let test_solo_schedule () =
  let m = Write_all.run ~schedule:(Write_all.solo 0) ~p:4 ~t:16 () in
  check "solo completes" true m.Write_all.completed;
  (* one processor does everything exactly once: no redundancy *)
  check_int "no redundant executions" 0 (Write_all.redundant m)

let test_rotating_and_random () =
  List.iter
    (fun schedule ->
      let m = Write_all.run ~schedule ~p:8 ~t:32 () in
      check "completes" true m.Write_all.completed)
    [
      Write_all.rotating ~width:3;
      Write_all.random_subset ~seed:5 ~prob:0.4;
    ]

let test_crashes_tolerated () =
  let m =
    Write_all.run
      ~crashes:(Write_all.crash_at ~time:3 ~pids:[ 0; 1; 2 ])
      ~p:4 ~t:24 ()
  in
  check "completes with one survivor" true m.Write_all.completed;
  check_int "three crashed" 3 m.Write_all.crashed

let test_last_survivor_immune () =
  let m =
    Write_all.run
      ~crashes:(Write_all.crash_at ~time:1 ~pids:[ 0; 1; 2; 3 ])
      ~p:4 ~t:12 ()
  in
  check "completes" true m.Write_all.completed;
  check_int "one survivor kept" 3 m.Write_all.crashed

let test_work_counts () =
  let m = Write_all.run ~p:6 ~t:24 () in
  check "work >= executions" true (m.Write_all.work >= m.Write_all.executions);
  check "writes >= job count" true (m.Write_all.writes >= 6);
  check "reads positive" true (m.Write_all.reads > 0)

let test_shared_memory_beats_message_passing () =
  (* Same instance, same algorithm skeleton: the shared-memory original
     costs no more work than DA under message passing with delays (DA
     pays the delay in redundant subtree work). *)
  let p = 16 and t = 64 in
  let shm = Write_all.run ~p ~t () in
  let msg =
    (Doall_core.Runner.run ~seed:1 ~algo:"da-q4" ~adv:"max-delay" ~p ~t ~d:16 ())
      .Doall_core.Runner.metrics
  in
  check
    (Printf.sprintf "shm %d <= msg %d" shm.Write_all.work
       msg.Doall_sim.Metrics.work)
    true
    (shm.Write_all.work <= msg.Doall_sim.Metrics.work)

let test_explicit_psi () =
  let psi = Gen.rotation_list ~n:3 ~count:3 in
  let m = Write_all.run ~q:3 ~psi ~p:9 ~t:27 () in
  check "explicit psi" true m.Write_all.completed

let test_bad_psi_rejected () =
  Alcotest.check_raises "wrong count"
    (Invalid_argument "Write_all.run: psi must contain exactly q permutations")
    (fun () ->
      ignore (Write_all.run ~q:3 ~psi:[ Perm.identity 3 ] ~p:3 ~t:3 ()))

let test_deterministic () =
  let run () =
    let m = Write_all.run ~p:8 ~t:40 ~schedule:(Write_all.rotating ~width:3) () in
    (m.Write_all.work, m.Write_all.sigma, m.Write_all.executions)
  in
  check "reproducible" true (run () = run ())

let suite =
  [
    Alcotest.test_case "fair completes across shapes" `Quick
      test_fair_completes;
    Alcotest.test_case "q variants" `Quick test_q_variants;
    Alcotest.test_case "solo schedule, zero redundancy" `Quick
      test_solo_schedule;
    Alcotest.test_case "rotating and random schedules" `Quick
      test_rotating_and_random;
    Alcotest.test_case "crashes tolerated" `Quick test_crashes_tolerated;
    Alcotest.test_case "last survivor immune" `Quick test_last_survivor_immune;
    Alcotest.test_case "work accounting" `Quick test_work_counts;
    Alcotest.test_case "shm <= message passing with delays" `Quick
      test_shared_memory_beats_message_passing;
    Alcotest.test_case "explicit psi" `Quick test_explicit_psi;
    Alcotest.test_case "bad psi rejected" `Quick test_bad_psi_rejected;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
  ]
