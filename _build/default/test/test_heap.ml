open Doall_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let int_heap () = Heap.create ~cmp:compare

let test_empty () =
  let h = int_heap () in
  check "is_empty" true (Heap.is_empty h);
  check_int "size" 0 (Heap.size h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h)

let test_single () =
  let h = int_heap () in
  Heap.add h 42;
  Alcotest.(check (option int)) "peek" (Some 42) (Heap.peek h);
  Alcotest.(check (option int)) "pop" (Some 42) (Heap.pop h);
  check "empty after" true (Heap.is_empty h)

let test_ordering () =
  let h = int_heap () in
  List.iter (Heap.add h) [ 5; 3; 8; 1; 9; 2 ];
  let drained = ref [] in
  let rec go () =
    match Heap.pop h with
    | Some x ->
      drained := x :: !drained;
      go ()
    | None -> ()
  in
  go ();
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 8; 9 ]
    (List.rev !drained)

let test_duplicates () =
  let h = int_heap () in
  List.iter (Heap.add h) [ 2; 2; 1; 2 ];
  Alcotest.(check (list int)) "dups kept" [ 1; 2; 2; 2 ] (Heap.to_sorted_list h);
  check_int "size preserved by to_sorted_list" 4 (Heap.size h)

let test_pop_exn () =
  let h = int_heap () in
  Alcotest.check_raises "empty" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_clear () =
  let h = int_heap () in
  List.iter (Heap.add h) [ 1; 2; 3 ];
  Heap.clear h;
  check "cleared" true (Heap.is_empty h)

let test_interleaved () =
  let h = int_heap () in
  Heap.add h 5;
  Heap.add h 1;
  Alcotest.(check (option int)) "first pop" (Some 1) (Heap.pop h);
  Heap.add h 0;
  Heap.add h 7;
  Alcotest.(check (option int)) "second pop" (Some 0) (Heap.pop h);
  Alcotest.(check (option int)) "third pop" (Some 5) (Heap.pop h);
  Alcotest.(check (option int)) "fourth pop" (Some 7) (Heap.pop h)

let test_custom_cmp () =
  let h = Heap.create ~cmp:(fun a b -> compare b a) in
  List.iter (Heap.add h) [ 3; 9; 1 ];
  Alcotest.(check (option int)) "max-heap" (Some 9) (Heap.pop h)

let prop_drain_sorted =
  QCheck2.Test.make ~name:"heap drains sorted" ~count:300
    QCheck2.Gen.(list_size (int_range 0 200) int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.add h) xs;
      let drained = Heap.to_sorted_list h in
      drained = List.sort compare xs)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "single element" `Quick test_single;
    Alcotest.test_case "pops in order" `Quick test_ordering;
    Alcotest.test_case "duplicates kept" `Quick test_duplicates;
    Alcotest.test_case "pop_exn raises" `Quick test_pop_exn;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "interleaved add/pop" `Quick test_interleaved;
    Alcotest.test_case "custom comparison" `Quick test_custom_cmp;
    QCheck_alcotest.to_alcotest prop_drain_sorted;
  ]
