test/test_engine.ml: Adversary Alcotest Algo_da Algo_pa Algo_trivial Array Config Doall_adversary Doall_core Doall_sim Engine Fun List Metrics Trace
