test/test_docs.ml: Alcotest Doall_core Doall_quorum Filename Fun List Str Sys
