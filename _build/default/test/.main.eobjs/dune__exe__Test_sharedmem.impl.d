test/test_sharedmem.ml: Alcotest Doall_core Doall_perms Doall_sharedmem Doall_sim Gen List Perm Printf Write_all
