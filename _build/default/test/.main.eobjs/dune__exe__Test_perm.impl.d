test/test_perm.ml: Alcotest Array Doall_perms Doall_sim Fmt List Perm QCheck2 QCheck_alcotest Rng String
