test/test_heap.ml: Alcotest Doall_sim Heap List QCheck2 QCheck_alcotest
