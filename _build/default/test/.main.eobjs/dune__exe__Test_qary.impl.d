test/test_qary.ml: Alcotest Array Doall_perms Fun List QCheck2 QCheck_alcotest Qary
