test/test_runner.ml: Alcotest Doall_core Doall_sim List Runner
