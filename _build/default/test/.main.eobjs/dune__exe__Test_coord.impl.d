test/test_coord.ml: Alcotest Algo_coord Algo_pa Algorithm Bitset Config Doall_adversary Doall_core Doall_sim Engine List Metrics Printf Runner
