test/test_gen_search.ml: Alcotest Contention Doall_perms Doall_sim Gen List Perm Printf Rng Search
