test/test_config_metrics.ml: Alcotest Array Config Doall_core Doall_sim Format List Metrics Runner Str String
