test/test_awq.ml: Alcotest Algo_awq Algo_da Algo_trivial Algorithm Bitset Config Doall_adversary Doall_core Doall_quorum Doall_sim Engine Fun List Metrics Printf Quorum Register Runner String
