test/test_oblido.ml: Adversary Alcotest Array Config Contention Doall_core Doall_perms Doall_sim Engine Fun Gen List Oblido Perm QCheck2 QCheck_alcotest Rng Search String
