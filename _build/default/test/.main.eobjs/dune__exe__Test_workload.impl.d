test/test_workload.ml: Alcotest Doall_core Doall_sim Doall_workload List QCheck2 QCheck_alcotest Runner Workload
