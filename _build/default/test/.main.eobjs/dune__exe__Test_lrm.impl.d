test/test_lrm.ml: Alcotest Array Doall_perms Doall_sim Fun List Lrm Perm QCheck2 QCheck_alcotest Rng
