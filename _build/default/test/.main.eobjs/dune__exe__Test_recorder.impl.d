test/test_recorder.ml: Adversary Alcotest Algo_da Algo_pa Config Crash Doall_adversary Doall_core Doall_sim Engine Lb_randomized Metrics Recorder
