test/test_contention.ml: Alcotest Array Contention Doall_perms Doall_sim Gen List Perm Printf QCheck2 QCheck_alcotest Rng
