test/test_trace.ml: Alcotest Array Doall_sim Format String Trace
