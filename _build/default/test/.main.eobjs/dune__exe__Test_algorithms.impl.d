test/test_algorithms.ml: Adversary Alcotest Algo_da Algo_pa Algo_trivial Algorithm Array Bitset Config Doall_adversary Doall_core Doall_perms Doall_sim Engine List Metrics Printf
