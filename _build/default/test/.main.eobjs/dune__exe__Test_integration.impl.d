test/test_integration.ml: Alcotest Algo_pa Config Contention Doall_core Doall_perms Doall_sim Engine Gen List Metrics Printf Runner
