test/test_task.ml: Alcotest Bitset Doall_core Doall_sim Fun List QCheck2 QCheck_alcotest Task
