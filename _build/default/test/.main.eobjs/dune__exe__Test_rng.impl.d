test/test_rng.ml: Alcotest Array Doall_sim Fun Hashtbl Rng
