test/main.mli:
