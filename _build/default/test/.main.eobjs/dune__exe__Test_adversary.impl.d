test/test_adversary.ml: Adversary Alcotest Algo_da Algo_pa Array Config Crash Delay Doall_adversary Doall_core Doall_sim Engine Lb_deterministic Lb_randomized List Metrics Printf Schedule
