test/test_event_queue.ml: Alcotest Doall_sim Event_queue List QCheck2 QCheck_alcotest
