test/test_network.ml: Alcotest Doall_sim List Network Rng
