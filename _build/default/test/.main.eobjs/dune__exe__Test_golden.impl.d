test/test_golden.ml: Alcotest Doall_core Doall_quorum Doall_sim List Runner
