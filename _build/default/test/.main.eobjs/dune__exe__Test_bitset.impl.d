test/test_bitset.ml: Alcotest Bitset Doall_sim Fun List QCheck2 QCheck_alcotest
