test/test_progress_tree.ml: Alcotest Bitset Doall_core Doall_sim Fun List Progress_tree QCheck2 QCheck_alcotest
