test/test_analysis.ml: Alcotest Bounds Doall_analysis Fit Float Lemma32 List Plot Printf Stats String Table
