(* The synchronous-style rotating-coordinator baseline: always-terminate
   guarantee (fallback), frugality when the synchrony assumption holds,
   degradation when it doesn't, and epoch/timeout mechanics. *)

open Doall_sim
open Doall_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run ?(seed = 1) ?(p = 8) ?(t = 48) ?(d = 2) ?(patience = 8) adv_name =
  let adversary = (Runner.find_adv adv_name).Runner.instantiate ~p ~t ~d in
  let cfg = Config.make ~seed ~p ~t () in
  Engine.run_packed (Algo_coord.make ~patience ()) cfg ~d ~adversary ()

let test_completes_everywhere () =
  List.iter
    (fun adv ->
      List.iter
        (fun d ->
          let m = run ~d adv in
          if not m.Metrics.completed then
            Alcotest.failf "coord vs %s d=%d did not complete" adv d)
        [ 1; 4; 16 ])
    [
      "fair"; "max-delay"; "uniform-delay"; "batch"; "solo"; "round-robin";
      "harmonic"; "random-half"; "laggard"; "lb-det"; "lb-rand";
      "crash-half"; "crash-all-but-one"; "crash-staggered";
    ]

let test_no_redundancy_under_synchrony () =
  (* With d = 1 and fair stepping, chunks never overlap: exactly t
     executions. *)
  let m = run ~d:1 "fair" in
  check_int "zero redundant executions" m.Metrics.t m.Metrics.executions

let test_message_frugality () =
  (* Coordinator rounds cost O(p) messages per epoch, against PA's
     (p-1) per step: coord must send far fewer messages at small d. *)
  let mc = run ~d:1 "fair" in
  let adversary = (Runner.find_adv "fair").Runner.instantiate ~p:8 ~t:48 ~d:1 in
  let cfg = Config.make ~seed:1 ~p:8 ~t:48 () in
  let mp = Engine.run_packed (Algo_pa.make_det ()) cfg ~d:1 ~adversary () in
  check
    (Printf.sprintf "coord M=%d << padet M=%d" mc.Metrics.messages
       mp.Metrics.messages)
    true
    (mc.Metrics.messages * 4 < mp.Metrics.messages)

let test_degrades_past_timeout () =
  (* Once d exceeds patience, suspicion thrashes and work jumps. *)
  let w_small = (run ~d:1 ~patience:8 "max-delay").Metrics.work in
  let w_large = (run ~d:32 ~patience:8 "max-delay").Metrics.work in
  check
    (Printf.sprintf "w(d=32)=%d >= 2 * w(d=1)=%d" w_large w_small)
    true
    (w_large >= 2 * w_small)

let test_patience_tunes_the_cliff () =
  (* A longer timeout tolerates a larger d before degrading (at the cost
     of waiting): with patience >= d the redundancy stays low. *)
  let impatient = run ~d:16 ~patience:2 "max-delay" in
  let patient = run ~d:16 ~patience:40 "max-delay" in
  check
    (Printf.sprintf "redundancy: impatient %d > patient %d"
       (Metrics.redundant impatient)
       (Metrics.redundant patient))
    true
    (Metrics.redundant impatient > Metrics.redundant patient)

let test_knowledge_soundness () =
  let (module A : Algorithm.S) = Algo_coord.make () in
  let module E = Engine.Make (A) in
  let cfg = Config.make ~seed:5 ~p:7 ~t:29 () in
  let adversary =
    (Runner.find_adv "random-half").Runner.instantiate ~p:7 ~t:29 ~d:5
  in
  let eng = E.create cfg ~d:5 ~adversary in
  let m = E.run eng in
  check "completed" true m.Metrics.completed;
  for pid = 0 to 6 do
    check "sound" true
      (Bitset.subset (A.done_tasks (E.state eng pid)) (E.global_done eng))
  done

let test_coordinator_crash_failover () =
  (* Crash the epoch-0 coordinator (pid 0) immediately: the rotation plus
     timeouts must hand progress to the others. *)
  let adversary =
    Doall_adversary.Crash.into ~name:"kill-coord"
      (Doall_adversary.Crash.at_time ~time:1 ~pids:[ 0 ])
  in
  let cfg = Config.make ~seed:2 ~p:6 ~t:24 () in
  let m = Engine.run_packed (Algo_coord.make ()) cfg ~d:2 ~adversary () in
  check "completes after coordinator crash" true m.Metrics.completed

let test_patience_validation () =
  Alcotest.check_raises "bad patience"
    (Invalid_argument "Algo_coord.make: patience >= 1") (fun () ->
      ignore (Algo_coord.make ~patience:0 ()))

let test_shapes () =
  List.iter
    (fun (p, t) ->
      let m = run ~p ~t "uniform-delay" in
      if not m.Metrics.completed then
        Alcotest.failf "coord p=%d t=%d did not complete" p t)
    [ (1, 1); (1, 10); (3, 3); (5, 17); (12, 6); (9, 100) ]

let suite =
  [
    Alcotest.test_case "completes under every adversary" `Slow
      test_completes_everywhere;
    Alcotest.test_case "no redundancy under synchrony" `Quick
      test_no_redundancy_under_synchrony;
    Alcotest.test_case "message frugality" `Quick test_message_frugality;
    Alcotest.test_case "degrades past the timeout" `Quick
      test_degrades_past_timeout;
    Alcotest.test_case "patience tunes the cliff" `Quick
      test_patience_tunes_the_cliff;
    Alcotest.test_case "knowledge soundness" `Quick test_knowledge_soundness;
    Alcotest.test_case "coordinator crash failover" `Quick
      test_coordinator_crash_failover;
    Alcotest.test_case "patience validation" `Quick test_patience_validation;
    Alcotest.test_case "instance shapes" `Quick test_shapes;
  ]
