(* Correctness of every algorithm under a battery of adversaries and
   instance shapes: termination, all tasks performed, knowledge soundness
   (no processor ever believes an unperformed task done), message-count
   structure, and per-family invariants. *)

open Doall_sim
open Doall_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let algos () =
  [
    ("trivial", Algo_trivial.make ());
    ("da-q2", Algo_da.make ~q:2 ());
    ("da-q3", Algo_da.make ~q:3 ());
    ("da-q4", Algo_da.make ~q:4 ());
    ("paran1", Algo_pa.make_ran1 ());
    ("paran2", Algo_pa.make_ran2 ());
    ("padet", Algo_pa.make_det ());
  ]

let shapes = [ (1, 1); (1, 7); (3, 3); (4, 16); (7, 5); (8, 64); (16, 16); (5, 23) ]

let adversaries ~p ~t =
  ignore p;
  [
    Adversary.fair;
    Adversary.max_delay;
    Adversary.uniform_delay;
    Doall_adversary.Schedule.into ~name:"rr"
      (Doall_adversary.Schedule.round_robin ~width:2);
    Doall_adversary.Schedule.into ~name:"harmonic"
      Doall_adversary.Schedule.harmonic_speeds;
    Doall_adversary.Schedule.combine ~name:"random-half"
      ~schedule:(Doall_adversary.Schedule.random_subset ~prob:0.5)
      ~delay:Doall_adversary.Delay.uniform ();
    Doall_adversary.Crash.into ~name:"crash-mid"
      (Doall_adversary.Crash.at_time ~time:(max 1 (t / 2))
         ~pids:[ 0 ]);
  ]

(* Run with direct engine access so local knowledge can be audited. *)
let run_audited (module A : Algorithm.S) ~p ~t ~d ~adv ~seed =
  let module E = Engine.Make (A) in
  let cfg = Config.make ~seed ~p ~t () in
  let eng = E.create cfg ~d ~adversary:adv in
  let m = E.run eng in
  let global = E.global_done eng in
  (* knowledge soundness: believe only performed tasks *)
  for pid = 0 to p - 1 do
    let local = A.done_tasks (E.state eng pid) in
    if not (Bitset.subset local global) then
      Alcotest.failf "%s: processor %d believes an unperformed task done"
        A.name pid
  done;
  (m, global)

let test_matrix () =
  List.iter
    (fun (name, algo) ->
      List.iter
        (fun (p, t) ->
          List.iter
            (fun d ->
              let advs = adversaries ~p ~t in
              List.iter
                (fun adv ->
                  let (module A : Algorithm.S) = algo in
                  let m, global =
                    run_audited (module A) ~p ~t ~d ~adv ~seed:(p + t + d)
                  in
                  if not m.Metrics.completed then
                    Alcotest.failf "%s vs %s (p=%d t=%d d=%d) timed out" name
                      adv.Adversary.name p t d;
                  if not (Bitset.is_full global) then
                    Alcotest.failf "%s vs %s: tasks missing" name
                      adv.Adversary.name;
                  if m.Metrics.executions < t then
                    Alcotest.failf "%s: executions < t" name;
                  if m.Metrics.work < m.Metrics.executions then
                    Alcotest.failf "%s: work below executions" name)
                advs)
            [ 1; 3; 17 ])
        shapes)
    (algos ())

let test_lb_adversaries_dont_break_correctness () =
  List.iter
    (fun (name, algo) ->
      List.iter
        (fun mk ->
          let adv = mk () in
          let (module A : Algorithm.S) = algo in
          let m, global =
            run_audited (module A) ~p:8 ~t:24 ~d:5 ~adv ~seed:11
          in
          check (name ^ " completes under LB adversary") true
            m.Metrics.completed;
          check (name ^ " performed everything") true (Bitset.is_full global))
        [
          (fun () -> Doall_adversary.Lb_deterministic.create ());
          (fun () -> Doall_adversary.Lb_randomized.create ());
          (fun () -> Doall_adversary.Lb_randomized.create ~selection:`Random ());
        ])
    (algos ())

let test_da_message_bound () =
  (* Theorem 5.6: M <= p * W, structurally (p-1) messages per broadcast. *)
  List.iter
    (fun q ->
      let m, _ =
        run_audited
          (let (module A : Algorithm.S) = Algo_da.make ~q () in
           (module A))
          ~p:9 ~t:40 ~d:4 ~adv:Adversary.fair ~seed:1
      in
      check
        (Printf.sprintf "M <= p*W for q=%d" q)
        true
        (m.Metrics.messages <= m.Metrics.p * m.Metrics.work))
    [ 2; 3; 4; 5 ]

let test_pa_broadcasts_every_task_step () =
  (* PA sends p-1 messages on every performing step. *)
  let m, _ =
    run_audited
      (let (module A : Algorithm.S) = Algo_pa.make_ran1 () in
       (module A))
      ~p:6 ~t:18 ~d:3 ~adv:Adversary.fair ~seed:2
  in
  check_int "M = (p-1) * executions" (5 * m.Metrics.executions)
    m.Metrics.messages

let test_trivial_never_communicates () =
  let m, _ =
    run_audited
      (let (module A : Algorithm.S) = Algo_trivial.make () in
       (module A))
      ~p:7 ~t:21 ~d:9 ~adv:Adversary.uniform_delay ~seed:3
  in
  check_int "no messages" 0 m.Metrics.messages;
  check_int "work = p*t" (7 * 21) m.Metrics.work

let test_da_solo_traversal () =
  (* A single processor must finish alone; its work is O(q * t). *)
  List.iter
    (fun q ->
      let m, _ =
        run_audited
          (let (module A : Algorithm.S) = Algo_da.make ~q () in
           (module A))
          ~p:1 ~t:32 ~d:4 ~adv:Adversary.fair ~seed:4
      in
      check "solo completes" true m.Metrics.completed;
      check
        (Printf.sprintf "solo work O(qt) for q=%d (got %d)" q m.Metrics.work)
        true
        (m.Metrics.work <= 4 * (q + 2) * 32))
    [ 2; 4; 8 ]

let test_da_explicit_psi () =
  let psi = Doall_perms.Gen.rotation_list ~n:3 ~count:3 in
  let m, _ =
    run_audited
      (let (module A : Algorithm.S) = Algo_da.make ~q:3 ~psi () in
       (module A))
      ~p:9 ~t:27 ~d:2 ~adv:Adversary.fair ~seed:5
  in
  check "explicit psi works" true m.Metrics.completed

let test_da_rejects_bad_psi () =
  Alcotest.check_raises "wrong count"
    (Invalid_argument "Algo_da.make: psi must contain exactly q permutations")
    (fun () ->
      ignore (Algo_da.make ~q:3 ~psi:[ Doall_perms.Perm.identity 3 ] ()));
  Alcotest.check_raises "wrong size"
    (Invalid_argument "Algo_da.make: psi permutations must have size q")
    (fun () ->
      ignore
        (Algo_da.make ~q:3
           ~psi:
             [
               Doall_perms.Perm.identity 4;
               Doall_perms.Perm.identity 4;
               Doall_perms.Perm.identity 4;
             ]
           ()))

let test_padet_explicit_psi () =
  let n = 6 in
  let psi = Doall_perms.Gen.seeded_list ~seed:5 ~n ~count:6 in
  let m, _ =
    run_audited
      (let (module A : Algorithm.S) = Algo_pa.make_det ~psi () in
       (module A))
      ~p:6 ~t:6 ~d:2 ~adv:Adversary.max_delay ~seed:6
  in
  check "padet with explicit psi" true m.Metrics.completed

let test_paran1_vs_paran2_comparable () =
  (* Same expected work family: with matched instances, the two should be
     within a small factor of each other on average. *)
  let avg maker =
    let works =
      List.map
        (fun seed ->
          let m, _ =
            run_audited
              (let (module A : Algorithm.S) = maker () in
               (module A))
              ~p:16 ~t:64 ~d:8 ~adv:Adversary.uniform_delay ~seed
          in
          float_of_int m.Metrics.work)
        [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    in
    List.fold_left ( +. ) 0.0 works /. 8.0
  in
  let w1 = avg Algo_pa.make_ran1 and w2 = avg Algo_pa.make_ran2 in
  check "PaRan1 ~ PaRan2" true (w1 /. w2 < 2.0 && w2 /. w1 < 2.0)

let test_pa_throttled_and_fanout_correct () =
  List.iter
    (fun (label, maker) ->
      List.iter
        (fun adv ->
          let m, global =
            run_audited
              (let (module A : Algorithm.S) = maker () in
               (module A))
              ~p:7 ~t:21 ~d:4 ~adv ~seed:5
          in
          if not m.Metrics.completed then
            Alcotest.failf "%s vs %s did not complete" label
              adv.Adversary.name;
          check (label ^ " all performed") true (Bitset.is_full global))
        [ Adversary.fair; Adversary.max_delay; Adversary.uniform_delay ])
    [
      ("padet-b4", fun () -> Algo_pa.make_det ~broadcast_every:4 ());
      ("paran1-b8", fun () -> Algo_pa.make_ran1 ~broadcast_every:8 ());
      ("paran1-f1", fun () -> Algo_pa.make_ran1 ~fanout:1 ());
      ("paran2-f3", fun () -> Algo_pa.make_ran2 ~fanout:3 ());
      ("padet-f2-b2", fun () -> Algo_pa.make_det ~fanout:2 ~broadcast_every:2 ());
    ]

let test_throttle_divides_messages () =
  let messages k =
    let m, _ =
      run_audited
        (let (module A : Algorithm.S) =
           Algo_pa.make_det ~broadcast_every:k ()
         in
         (module A))
        ~p:8 ~t:32 ~d:2 ~adv:Adversary.fair ~seed:6
    in
    m.Metrics.messages
  in
  let m1 = messages 1 and m4 = messages 4 in
  check (Printf.sprintf "M(k=4)=%d <= M(k=1)=%d / 2" m4 m1) true (m4 * 2 <= m1)

let test_fanout_message_structure () =
  (* fanout k: every performing step sends exactly k unicasts. *)
  let m, _ =
    run_audited
      (let (module A : Algorithm.S) = Algo_pa.make_ran1 ~fanout:3 () in
       (module A))
      ~p:8 ~t:24 ~d:2 ~adv:Adversary.fair ~seed:7
  in
  check_int "M = 3 * executions" (3 * m.Metrics.executions)
    m.Metrics.messages

let test_fanout_validation () =
  check "fanout 0 rejected" true
    (try
       ignore (Algo_pa.make_ran1 ~fanout:0 ());
       false
     with Invalid_argument _ -> true)

let test_da_copy_independence () =
  (* Stepping a clone never changes the original's observable future:
     two identical runs, one with a cloning adversary, agree. Exercises
     A.copy depth for DA's frame stack. *)
  let peek =
    {
      Adversary.fair with
      name = "clone-peek";
      schedule =
        (fun o ->
          for pid = 0 to o.Adversary.p - 1 do
            ignore (o.Adversary.plan ~pid ~horizon:3)
          done;
          Array.make o.Adversary.p true);
    }
  in
  let run adv =
    let m, _ =
      run_audited
        (let (module A : Algorithm.S) = Algo_da.make ~q:3 () in
         (module A))
        ~p:5 ~t:25 ~d:3 ~adv ~seed:8
    in
    (m.Metrics.work, m.Metrics.sigma, m.Metrics.messages)
  in
  check "cloning is side-effect free" true (run peek = run Adversary.fair)

let suite =
  [
    Alcotest.test_case "matrix: all algos x shapes x adversaries" `Slow
      test_matrix;
    Alcotest.test_case "LB adversaries preserve correctness" `Quick
      test_lb_adversaries_dont_break_correctness;
    Alcotest.test_case "DA: M <= pW" `Quick test_da_message_bound;
    Alcotest.test_case "PA: M = (p-1) executions" `Quick
      test_pa_broadcasts_every_task_step;
    Alcotest.test_case "trivial: silent, W = pt" `Quick
      test_trivial_never_communicates;
    Alcotest.test_case "DA: solo traversal O(qt)" `Quick
      test_da_solo_traversal;
    Alcotest.test_case "DA: explicit psi" `Quick test_da_explicit_psi;
    Alcotest.test_case "DA: rejects bad psi" `Quick test_da_rejects_bad_psi;
    Alcotest.test_case "PaDet: explicit psi" `Quick test_padet_explicit_psi;
    Alcotest.test_case "PaRan1 ~ PaRan2 on average" `Slow
      test_paran1_vs_paran2_comparable;
    Alcotest.test_case "PA throttled/fanout variants correct" `Quick
      test_pa_throttled_and_fanout_correct;
    Alcotest.test_case "throttling divides messages" `Quick
      test_throttle_divides_messages;
    Alcotest.test_case "fanout message structure" `Quick
      test_fanout_message_structure;
    Alcotest.test_case "fanout validation" `Quick test_fanout_validation;
    Alcotest.test_case "DA: clone independence" `Quick
      test_da_copy_independence;
  ]
