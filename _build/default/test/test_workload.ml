open Doall_workload
open Doall_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_checksum_deterministic () =
  let w = Workload.checksum ~t:16 in
  for z = 0 to 15 do
    check_int "replays identically" (Workload.run_task w z)
      (Workload.run_task w z)
  done

let test_checksum_distinct () =
  let w = Workload.checksum ~t:32 in
  let results = List.init 32 (Workload.run_task w) in
  check_int "results distinct" 32
    (List.length (List.sort_uniq compare results))

let test_range_check () =
  let w = Workload.checksum ~t:4 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Workload.run_task: task out of range") (fun () ->
      ignore (Workload.run_task w 4))

let test_keyspace_scan () =
  let w = Workload.keyspace_scan ~t:5 ~shard_size:10 ~hit:(fun k -> k mod 7 = 0) in
  Alcotest.(check (list int)) "shard 0 hits" [ 0; 7 ] (Workload.run_task w 0);
  Alcotest.(check (list int)) "shard 2 hits" [ 21; 28 ] (Workload.run_task w 2)

let test_journal_counts () =
  let w = Workload.checksum ~t:4 in
  let j = Workload.Journal.create w in
  Workload.Journal.record j ~task:0;
  Workload.Journal.record j ~task:1;
  Workload.Journal.record j ~task:0;
  check_int "executions" 3 (Workload.Journal.executions j);
  check_int "distinct" 2 (Workload.Journal.distinct j);
  check_int "redundant" 1 (Workload.Journal.redundant j);
  check "incomplete" false (Workload.Journal.complete j);
  check "consistent" true (Workload.Journal.consistent j);
  Workload.Journal.record j ~task:2;
  Workload.Journal.record j ~task:3;
  check "complete" true (Workload.Journal.complete j)

let test_journal_results () =
  let w = Workload.checksum ~t:3 in
  let j = Workload.Journal.create w in
  Workload.Journal.record j ~task:2;
  Alcotest.(check (option int)) "recorded" (Some (Workload.run_task w 2))
    (Workload.Journal.result j 2);
  Alcotest.(check (option int)) "absent" None (Workload.Journal.result j 0);
  check_int "results list" 1 (List.length (Workload.Journal.results j))

let test_journal_catches_nonidempotence () =
  let w = Workload.broken_nonidempotent ~t:3 () in
  let j = Workload.Journal.create w in
  Workload.Journal.record j ~task:1;
  Workload.Journal.record j ~task:1;
  check "violation detected" false (Workload.Journal.consistent j);
  check_int "one violation" 1 (List.length (Workload.Journal.violations j))

let test_replay_simulated_run () =
  (* End-to-end: adversarial run -> trace -> journal; idempotence and
     completeness must hold with a real workload attached. *)
  let p = 6 and t = 30 and d = 4 in
  let w = Workload.flaky_but_idempotent ~t ~seed:99 in
  let result, trace =
    Runner.run_traced ~seed:4 ~algo:"paran1" ~adv:"random-half" ~p ~t ~d ()
  in
  check "sim completed" true result.Runner.metrics.Doall_sim.Metrics.completed;
  let j = Workload.Journal.create w in
  Workload.Journal.replay_trace j trace;
  check "all tasks executed" true (Workload.Journal.complete j);
  check "idempotence verified" true (Workload.Journal.consistent j);
  check_int "journal matches metrics"
    result.Runner.metrics.Doall_sim.Metrics.executions
    (Workload.Journal.executions j)

let test_replay_catches_bad_tasks_under_redundancy () =
  (* The same end-to-end loop flags a broken workload whenever the
     schedule forces redundancy. *)
  let p = 6 and t = 24 and d = 8 in
  let result, trace =
    Runner.run_traced ~seed:5 ~algo:"paran2" ~adv:"max-delay" ~p ~t ~d ()
  in
  let m = result.Runner.metrics in
  check "run had redundancy" true (Doall_sim.Metrics.redundant m > 0);
  let j = Workload.Journal.create (Workload.broken_nonidempotent ~t ()) in
  Workload.Journal.replay_trace j trace;
  check "violations surfaced" false (Workload.Journal.consistent j)

let prop_journal_accounting =
  QCheck2.Test.make ~name:"journal accounting identities" ~count:100
    QCheck2.Gen.(
      let* t = int_range 1 20 in
      let* ops = list_size (int_range 0 60) (int_range 0 (t - 1)) in
      return (t, ops))
    (fun (t, ops) ->
      let j = Workload.Journal.create (Workload.checksum ~t) in
      List.iter (fun task -> Workload.Journal.record j ~task) ops;
      Workload.Journal.executions j = List.length ops
      && Workload.Journal.distinct j
         = List.length (List.sort_uniq compare ops)
      && Workload.Journal.redundant j
         = List.length ops - Workload.Journal.distinct j
      && Workload.Journal.consistent j)

let suite =
  [
    Alcotest.test_case "checksum deterministic" `Quick
      test_checksum_deterministic;
    Alcotest.test_case "checksum distinct" `Quick test_checksum_distinct;
    Alcotest.test_case "range check" `Quick test_range_check;
    Alcotest.test_case "keyspace scan" `Quick test_keyspace_scan;
    Alcotest.test_case "journal counts" `Quick test_journal_counts;
    Alcotest.test_case "journal results" `Quick test_journal_results;
    Alcotest.test_case "journal catches non-idempotence" `Quick
      test_journal_catches_nonidempotence;
    Alcotest.test_case "replay a simulated run" `Quick
      test_replay_simulated_run;
    Alcotest.test_case "replay flags broken tasks" `Quick
      test_replay_catches_bad_tasks_under_redundancy;
    QCheck_alcotest.to_alcotest prop_journal_accounting;
  ]
