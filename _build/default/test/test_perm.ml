open Doall_perms
open Doall_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let perm = Alcotest.testable (Fmt.of_to_string (fun p ->
    String.concat " " (List.map string_of_int (Array.to_list (Perm.to_array p)))))
    Perm.equal

let test_identity () =
  let id = Perm.identity 5 in
  for i = 0 to 4 do
    check_int "id(i)=i" i (Perm.apply id i)
  done

let test_reverse () =
  let r = Perm.reverse 4 in
  Alcotest.(check (array int)) "reverse" [| 3; 2; 1; 0 |] (Perm.to_array r)

let test_rotation () =
  let r = Perm.rotation 5 2 in
  Alcotest.(check (array int)) "rotation" [| 2; 3; 4; 0; 1 |] (Perm.to_array r);
  Alcotest.check perm "rotation 0 = id" (Perm.identity 5) (Perm.rotation 5 0);
  Alcotest.check perm "rotation n = id" (Perm.identity 5) (Perm.rotation 5 5);
  Alcotest.check perm "negative wraps" (Perm.rotation 5 3) (Perm.rotation 5 (-2))

let test_of_array_validation () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Perm.of_array: not a permutation") (fun () ->
      ignore (Perm.of_array [| 0; 0; 1 |]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Perm.of_array: not a permutation") (fun () ->
      ignore (Perm.of_array [| 0; 3 |]))

let test_of_array_copies () =
  let a = [| 1; 0 |] in
  let p = Perm.of_array a in
  a.(0) <- 0;
  check_int "inner copy" 1 (Perm.apply p 0)

let test_compose () =
  let a = Perm.of_array [| 1; 2; 0 |] in
  let b = Perm.of_array [| 2; 0; 1 |] in
  (* (a o b)(i) = a(b(i)) *)
  Alcotest.(check (array int)) "compose" [| 0; 1; 2 |]
    (Perm.to_array (Perm.compose a b))

let test_inverse () =
  let a = Perm.of_array [| 2; 0; 3; 1 |] in
  Alcotest.check perm "a o a^-1 = id" (Perm.identity 4)
    (Perm.compose a (Perm.inverse a));
  Alcotest.check perm "a^-1 o a = id" (Perm.identity 4)
    (Perm.compose (Perm.inverse a) a)

let test_all_count () =
  check_int "0! lists" 1 (List.length (Perm.all 0));
  check_int "3!" 6 (List.length (Perm.all 3));
  check_int "5!" 120 (List.length (Perm.all 5))

let test_all_distinct () =
  let perms = Perm.all 4 in
  let as_lists = List.map (fun p -> Array.to_list (Perm.to_array p)) perms in
  check_int "all distinct" 24 (List.length (List.sort_uniq compare as_lists))

let test_all_lexicographic () =
  match Perm.all 3 with
  | first :: _ ->
    Alcotest.check perm "starts at identity" (Perm.identity 3) first
  | [] -> Alcotest.fail "empty"

let test_next_in_place_wraps () =
  let a = [| 2; 1; 0 |] in
  check "last permutation wraps" false (Perm.next_in_place a);
  Alcotest.(check (array int)) "wraps to identity" [| 0; 1; 2 |] a

let prop_random_valid =
  QCheck2.Test.make ~name:"random permutations are valid" ~count:200
    QCheck2.Gen.(int_range 1 50)
    (fun n ->
      let rng = Rng.create n in
      Perm.is_valid (Perm.to_array (Perm.random rng n)))

let prop_compose_assoc =
  QCheck2.Test.make ~name:"composition associative" ~count:100
    QCheck2.Gen.(int_range 1 20)
    (fun n ->
      let rng = Rng.create (n * 31) in
      let a = Perm.random rng n
      and b = Perm.random rng n
      and c = Perm.random rng n in
      Perm.equal
        (Perm.compose (Perm.compose a b) c)
        (Perm.compose a (Perm.compose b c)))

let prop_inverse_involutive =
  QCheck2.Test.make ~name:"inverse of inverse" ~count:100
    QCheck2.Gen.(int_range 1 30)
    (fun n ->
      let rng = Rng.create (n * 17) in
      let a = Perm.random rng n in
      Perm.equal a (Perm.inverse (Perm.inverse a)))

let suite =
  [
    Alcotest.test_case "identity" `Quick test_identity;
    Alcotest.test_case "reverse" `Quick test_reverse;
    Alcotest.test_case "rotation" `Quick test_rotation;
    Alcotest.test_case "of_array validates" `Quick test_of_array_validation;
    Alcotest.test_case "of_array copies" `Quick test_of_array_copies;
    Alcotest.test_case "compose" `Quick test_compose;
    Alcotest.test_case "inverse" `Quick test_inverse;
    Alcotest.test_case "all: count" `Quick test_all_count;
    Alcotest.test_case "all: distinct" `Quick test_all_distinct;
    Alcotest.test_case "all: lexicographic start" `Quick
      test_all_lexicographic;
    Alcotest.test_case "next_in_place wraps" `Quick test_next_in_place_wraps;
    QCheck_alcotest.to_alcotest prop_random_valid;
    QCheck_alcotest.to_alcotest prop_compose_assoc;
    QCheck_alcotest.to_alcotest prop_inverse_involutive;
  ]
