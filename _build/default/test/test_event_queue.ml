open Doall_sim

let check = Alcotest.(check bool)

let test_empty () =
  let q = Event_queue.create () in
  check "empty" true (Event_queue.is_empty q);
  Alcotest.(check (option string)) "nothing due" None
    (Event_queue.pop_due q ~now:100)

let test_due_ordering () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:5 "c";
  Event_queue.add q ~time:1 "a";
  Event_queue.add q ~time:3 "b";
  Alcotest.(check (list string)) "time order" [ "a"; "b" ]
    (Event_queue.pop_all_due q ~now:3);
  Alcotest.(check (list string)) "rest later" [ "c" ]
    (Event_queue.pop_all_due q ~now:10)

let test_not_due_stays () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:7 "x";
  Alcotest.(check (option string)) "not due yet" None
    (Event_queue.pop_due q ~now:6);
  Alcotest.(check int) "still queued" 1 (Event_queue.size q);
  Alcotest.(check (option string)) "due now" (Some "x")
    (Event_queue.pop_due q ~now:7)

let test_tie_break_fifo () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:2 "first";
  Event_queue.add q ~time:2 "second";
  Event_queue.add q ~time:2 "third";
  Alcotest.(check (list string)) "insertion order at equal time"
    [ "first"; "second"; "third" ]
    (Event_queue.pop_all_due q ~now:2)

let test_past_events () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:0 "late-scheduled";
  Alcotest.(check (option string)) "past delivered" (Some "late-scheduled")
    (Event_queue.pop_due q ~now:50)

let test_next_time () =
  let q = Event_queue.create () in
  Alcotest.(check (option int)) "empty" None (Event_queue.next_time q);
  Event_queue.add q ~time:9 "x";
  Event_queue.add q ~time:4 "y";
  Alcotest.(check (option int)) "min" (Some 4) (Event_queue.next_time q)

let prop_pop_all_due_partitions =
  QCheck2.Test.make ~name:"pop_all_due returns exactly the due items"
    ~count:200
    QCheck2.Gen.(
      let* events = list_size (int_range 0 60) (int_range 0 50) in
      let* now = int_range 0 50 in
      return (events, now))
    (fun (times, now) ->
      let q = Event_queue.create () in
      List.iteri (fun i time -> Event_queue.add q ~time (time, i)) times;
      let due = Event_queue.pop_all_due q ~now in
      let expected_due = List.filter (fun time -> time <= now) times in
      List.length due = List.length expected_due
      && List.for_all (fun (time, _) -> time <= now) due
      && Event_queue.size q = List.length times - List.length due)

let prop_delivery_order_monotone =
  QCheck2.Test.make ~name:"deliveries are time-monotone" ~count:200
    QCheck2.Gen.(list_size (int_range 0 80) (int_range 0 30))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun time -> Event_queue.add q ~time time) times;
      let out = Event_queue.pop_all_due q ~now:1000 in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone out)

let suite =
  [
    Alcotest.test_case "empty queue" `Quick test_empty;
    Alcotest.test_case "due ordering" `Quick test_due_ordering;
    Alcotest.test_case "not-due stays queued" `Quick test_not_due_stays;
    Alcotest.test_case "FIFO tie-break" `Quick test_tie_break_fifo;
    Alcotest.test_case "past events delivered" `Quick test_past_events;
    Alcotest.test_case "next_time" `Quick test_next_time;
    QCheck_alcotest.to_alcotest prop_pop_all_due_partitions;
    QCheck_alcotest.to_alcotest prop_delivery_order_monotone;
  ]
