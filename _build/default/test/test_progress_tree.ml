open Doall_core
open Doall_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_shape_exact_power () =
  let sh = Progress_tree.shape ~q:2 ~jobs:8 in
  check_int "height" 3 sh.Progress_tree.h;
  check_int "leaves" 8 sh.Progress_tree.leaves;
  check_int "size" 15 sh.Progress_tree.size;
  check_int "first leaf" 7 sh.Progress_tree.first_leaf

let test_shape_padding () =
  let sh = Progress_tree.shape ~q:3 ~jobs:5 in
  check_int "leaves rounded to 9" 9 sh.Progress_tree.leaves;
  check_int "height" 2 sh.Progress_tree.h;
  check_int "size 1+3+9" 13 sh.Progress_tree.size

let test_single_job () =
  let sh = Progress_tree.shape ~q:4 ~jobs:1 in
  check_int "height 0" 0 sh.Progress_tree.h;
  check_int "one node" 1 sh.Progress_tree.size;
  check "root is leaf" true (Progress_tree.is_leaf sh Progress_tree.root)

let test_children_and_parent () =
  let sh = Progress_tree.shape ~q:3 ~jobs:9 in
  for v = 0 to sh.Progress_tree.first_leaf - 1 do
    for j = 0 to 2 do
      let c = Progress_tree.child sh v j in
      check_int "parent of child" v (Progress_tree.parent sh c)
    done
  done

let test_depth () =
  let sh = Progress_tree.shape ~q:2 ~jobs:8 in
  check_int "root depth" 0 (Progress_tree.depth sh 0);
  check_int "leaf depth" 3 (Progress_tree.depth sh (Progress_tree.leaf_of_job sh 0));
  check_int "mid depth" 1 (Progress_tree.depth sh 1)

let test_leaf_job_roundtrip () =
  let sh = Progress_tree.shape ~q:3 ~jobs:7 in
  for j = 0 to 6 do
    check_int "roundtrip" j
      (Progress_tree.job_of_leaf sh (Progress_tree.leaf_of_job sh j))
  done

let test_dummy_leaves () =
  let sh = Progress_tree.shape ~q:3 ~jobs:7 in
  check "leaf 7 is dummy" true
    (Progress_tree.is_dummy_leaf sh (sh.Progress_tree.first_leaf + 7));
  check "leaf 6 is real" false
    (Progress_tree.is_dummy_leaf sh (sh.Progress_tree.first_leaf + 6));
  Alcotest.check_raises "job_of_leaf on dummy"
    (Invalid_argument "Progress_tree.job_of_leaf: dummy leaf") (fun () ->
      ignore (Progress_tree.job_of_leaf sh (sh.Progress_tree.first_leaf + 8)))

let test_initial_marks () =
  let sh = Progress_tree.shape ~q:2 ~jobs:5 in
  (* 8 leaves, 3 dummy *)
  let marks = Progress_tree.initial_marks sh in
  for j = 0 to 4 do
    check "real leaves unmarked" false
      (Bitset.mem marks (Progress_tree.leaf_of_job sh j))
  done;
  for k = 5 to 7 do
    check "dummy leaves marked" true
      (Bitset.mem marks (sh.Progress_tree.first_leaf + k))
  done;
  check "root unmarked" false (Bitset.mem marks 0)

let test_initial_marks_interior_closure () =
  (* q=2, jobs=5 of 8 leaves: leaves 5..7 are dummy; the subtree over
     leaves {6,7} is all-dummy, so its root must be pre-marked, while the
     subtree over {4,5} (one real leaf) must not be. *)
  let sh = Progress_tree.shape ~q:2 ~jobs:5 in
  let marks = Progress_tree.initial_marks sh in
  let right = Progress_tree.child sh 0 1 in
  let over67 = Progress_tree.child sh right 1 in
  let over45 = Progress_tree.child sh right 0 in
  check "all-dummy subtree root marked" true (Bitset.mem marks over67);
  check "half-real subtree unmarked" false (Bitset.mem marks over45);
  check "root unmarked" false (Bitset.mem marks 0)

let test_subtree_jobs () =
  let sh = Progress_tree.shape ~q:2 ~jobs:6 in
  Alcotest.(check (list int)) "root covers all jobs" [ 0; 1; 2; 3; 4; 5 ]
    (List.sort compare (Progress_tree.subtree_jobs sh 0));
  let right = Progress_tree.child sh 0 1 in
  Alcotest.(check (list int)) "right subtree jobs" [ 4; 5 ]
    (List.sort compare (Progress_tree.subtree_jobs sh right))

let test_validation () =
  Alcotest.check_raises "q too small"
    (Invalid_argument "Progress_tree.shape: q >= 2") (fun () ->
      ignore (Progress_tree.shape ~q:1 ~jobs:4));
  let sh = Progress_tree.shape ~q:2 ~jobs:4 in
  Alcotest.check_raises "child of leaf"
    (Invalid_argument "Progress_tree.child: leaf has no children") (fun () ->
      ignore (Progress_tree.child sh (Progress_tree.leaf_of_job sh 0) 0));
  Alcotest.check_raises "parent of root"
    (Invalid_argument "Progress_tree.parent: root") (fun () ->
      ignore (Progress_tree.parent sh 0))

let prop_shape_consistent =
  QCheck2.Test.make ~name:"shape arithmetic consistent" ~count:200
    QCheck2.Gen.(pair (int_range 2 6) (int_range 1 500))
    (fun (q, jobs) ->
      let sh = Progress_tree.shape ~q ~jobs in
      let pow_h =
        let rec go acc k = if k = 0 then acc else go (acc * q) (k - 1) in
        go 1 sh.Progress_tree.h
      in
      sh.Progress_tree.leaves = pow_h
      && sh.Progress_tree.leaves >= jobs
      && (sh.Progress_tree.h = 0 || sh.Progress_tree.leaves / q < jobs)
      && sh.Progress_tree.size
         = sh.Progress_tree.first_leaf + sh.Progress_tree.leaves)

let prop_leaves_have_no_children_in_range =
  QCheck2.Test.make ~name:"node classification consistent" ~count:100
    QCheck2.Gen.(pair (int_range 2 5) (int_range 1 100))
    (fun (q, jobs) ->
      let sh = Progress_tree.shape ~q ~jobs in
      List.for_all
        (fun v ->
          if Progress_tree.is_leaf sh v then true
          else
            List.for_all
              (fun j ->
                let c = Progress_tree.child sh v j in
                c > v && c < sh.Progress_tree.size)
              (List.init q Fun.id))
        (List.init sh.Progress_tree.size Fun.id))

let suite =
  [
    Alcotest.test_case "shape: exact power" `Quick test_shape_exact_power;
    Alcotest.test_case "shape: padding" `Quick test_shape_padding;
    Alcotest.test_case "single job tree" `Quick test_single_job;
    Alcotest.test_case "children/parent" `Quick test_children_and_parent;
    Alcotest.test_case "depth" `Quick test_depth;
    Alcotest.test_case "leaf/job roundtrip" `Quick test_leaf_job_roundtrip;
    Alcotest.test_case "dummy leaves" `Quick test_dummy_leaves;
    Alcotest.test_case "initial marks" `Quick test_initial_marks;
    Alcotest.test_case "initial marks: interior closure" `Quick
      test_initial_marks_interior_closure;
    Alcotest.test_case "subtree jobs" `Quick test_subtree_jobs;
    Alcotest.test_case "validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest prop_shape_consistent;
    QCheck_alcotest.to_alcotest prop_leaves_have_no_children_in_range;
  ]
