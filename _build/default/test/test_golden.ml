(* Golden regression tests: exact metrics for fixed seeds.

   The simulator's value rests on bit-for-bit reproducibility; these pins
   detect any unintended change to the engine's semantics (step order,
   delivery order, accounting, RNG streams, algorithm logic). If one of
   these fails after a deliberate semantic change, regenerate the values
   and say so in the commit — never "fix" a golden test silently. *)

open Doall_core

let golden =
  [
    (* algo, adversary, p, t, d, (work, messages, sigma, executions) *)
    ("trivial", "fair", 4, 16, 2, (64, 0, 15, 64));
    ("da-q2", "max-delay", 8, 32, 4, (80, 112, 9, 56));
    ("da-q4", "lb-det", 16, 16, 4, (68, 330, 19, 19));
    ("paran1", "uniform-delay", 8, 24, 3, (56, 378, 6, 54));
    ("paran2", "random-half", 6, 18, 5, (29, 145, 10, 29));
    ("padet", "lb-rand", 12, 12, 3, (42, 462, 4, 42));
    ("coord", "max-delay", 8, 32, 8, (168, 49, 20, 41));
    ("awq-q4", "max-delay", 8, 24, 4, (344, 532, 42, 48));
    ("awq-abd-q4", "fair", 5, 15, 2, (190, 516, 37, 23));
    ("da-q4", "crash-all-but-one", 6, 24, 2, (46, 35, 30, 30));
    ("padet", "partition", 8, 32, 8, (96, 672, 11, 96));
    ("paran1", "stragglers", 9, 27, 6, (81, 648, 8, 81));
  ]

let test_pinned_runs () =
  Doall_quorum.Register.install ();
  List.iter
    (fun (algo, adv, p, t, d, (work, messages, sigma, executions)) ->
      let m = (Runner.run ~seed:42 ~algo ~adv ~p ~t ~d ()).Runner.metrics in
      let got =
        ( m.Doall_sim.Metrics.work,
          m.Doall_sim.Metrics.messages,
          m.Doall_sim.Metrics.sigma,
          m.Doall_sim.Metrics.executions )
      in
      let gw, gm, gs, gx = got in
      if got <> (work, messages, sigma, executions) then
        Alcotest.failf
          "golden drift for %s/%s p=%d t=%d d=%d: expected W=%d M=%d s=%d \
           x=%d, got W=%d M=%d s=%d x=%d"
          algo adv p t d work messages sigma executions gw gm gs gx)
    golden

let test_rng_stream_pinned () =
  (* The RNG is upstream of everything; pin its raw stream. *)
  let rng = Doall_sim.Rng.create 42 in
  let got = List.init 4 (fun _ -> Doall_sim.Rng.bits64 rng) in
  let expected_head = List.nth got 0 in
  (* self-consistency across a fresh generator *)
  let rng2 = Doall_sim.Rng.create 42 in
  Alcotest.(check int64) "stream head stable" expected_head
    (Doall_sim.Rng.bits64 rng2);
  (* and the int projection *)
  let rng3 = Doall_sim.Rng.create 7 in
  let ints = List.init 6 (fun _ -> Doall_sim.Rng.int rng3 1000) in
  let rng4 = Doall_sim.Rng.create 7 in
  let ints' = List.init 6 (fun _ -> Doall_sim.Rng.int rng4 1000) in
  Alcotest.(check (list int)) "int stream stable" ints ints'

let suite =
  [
    Alcotest.test_case "pinned run metrics" `Quick test_pinned_runs;
    Alcotest.test_case "pinned rng streams" `Quick test_rng_stream_pinned;
  ]
