open Doall_perms
open Doall_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_two_processor_example () =
  (* Section 4's opening example: with psi = <id, reverse> and rho = id,
     the identity contributes n lrm's and the reverse contributes 1. *)
  let n = 6 in
  let psi = Gen.reverse_identity_pair ~n in
  check_int "Cont(psi, id)" (n + 1)
    (Contention.contention_wrt psi ~rho:(Perm.identity n))

let test_identity_list_worst () =
  (* all-identity list: against rho = id every schedule has n maxima. *)
  let n = 5 in
  let psi = Gen.identity_list ~n ~count:n in
  check_int "n^2 against id" (n * n)
    (Contention.contention_wrt psi ~rho:(Perm.identity n));
  check_int "exact = n^2" (n * n) (Contention.contention_exact psi)

let test_exact_bounds () =
  let rng = Rng.create 21 in
  for n = 2 to 5 do
    let psi = Gen.random_list ~rng ~n ~count:n in
    let c = Contention.contention_exact psi in
    check "n <= Cont" true (c >= n);
    check "Cont <= n^2" true (c <= n * n)
  done

let test_exact_is_max () =
  let rng = Rng.create 22 in
  let n = 4 in
  let psi = Gen.random_list ~rng ~n ~count:n in
  let exact = Contention.contention_exact psi in
  List.iter
    (fun rho ->
      check "exact dominates every rho" true
        (Contention.contention_wrt psi ~rho <= exact))
    (Perm.all n)

let test_estimate_sandwich () =
  let rng = Rng.create 23 in
  let n = 6 in
  let psi = Gen.random_list ~rng ~n ~count:n in
  let exact = Contention.contention_exact psi in
  let est = Contention.contention_estimate ~rng psi in
  check "estimate <= exact" true (est <= exact);
  check "estimate >= Cont(psi, id)" true
    (est >= Contention.contention_wrt psi ~rho:(Perm.identity n));
  (* Hill climbing over S_6 usually nails the max; accept near-misses. *)
  check "estimate close to exact" true (float_of_int est >= 0.85 *. float_of_int exact)

let test_d_contention_d1 () =
  let rng = Rng.create 24 in
  let n = 5 in
  let psi = Gen.random_list ~rng ~n ~count:n in
  List.iter
    (fun rho ->
      check_int "d=1 contention = contention"
        (Contention.contention_wrt psi ~rho)
        (Contention.d_contention_wrt ~d:1 psi ~rho))
    (Perm.all n)

let test_d_contention_saturates () =
  let rng = Rng.create 25 in
  let n = 5 in
  let psi = Gen.random_list ~rng ~n ~count:n in
  check_int "d>=n gives n per schedule" (n * n)
    (Contention.d_contention_exact ~d:n psi)

let test_d_contention_monotone_in_d () =
  let rng = Rng.create 26 in
  let n = 5 in
  let psi = Gen.random_list ~rng ~n ~count:n in
  let prev = ref 0 in
  for d = 1 to n do
    let c = Contention.d_contention_exact ~d psi in
    check "monotone" true (c >= !prev);
    prev := c
  done

let test_harmonic () =
  check "H_1" true (abs_float (Contention.harmonic 1 -. 1.0) < 1e-9);
  check "H_2" true (abs_float (Contention.harmonic 2 -. 1.5) < 1e-9);
  check "H_4" true
    (abs_float (Contention.harmonic 4 -. (25.0 /. 12.0)) < 1e-9)

let test_bound_lemma41 () =
  check "3nHn for n=4" true
    (abs_float (Contention.bound_lemma_4_1 4 -. (3.0 *. 4.0 *. (25.0 /. 12.0)))
     < 1e-9)

let test_random_list_meets_whp_bound () =
  (* Theorem 4.4's event for random lists, tested at n=p=40 and several d:
     the d-contention w.r.t. a handful of adversarial-ish rhos stays under
     n ln n + 8 p d ln(e + n/d). (Full max is intractable; the sampled
     value lower-bounds it but the w.h.p. statement is about the max — we
     check the bound on the estimate, which must then also hold.) *)
  let n = 40 in
  let rng = Rng.create 27 in
  let psi = Gen.random_list ~rng ~n ~count:n in
  List.iter
    (fun d ->
      let est =
        Contention.d_contention_estimate ~restarts:2 ~samples:16 ~rng ~d psi
      in
      let bound = Contention.bound_theorem_4_4 ~n ~p:n ~d in
      check
        (Printf.sprintf "d=%d estimate %d under bound %.0f" d est bound)
        true
        (float_of_int est <= bound))
    [ 1; 2; 4; 8 ]

let test_empty_list () =
  check_int "empty list" 0 (Contention.contention_exact [])

let test_size_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Contention: size mismatch between list and rho")
    (fun () ->
      ignore
        (Contention.contention_wrt [ Perm.identity 3 ] ~rho:(Perm.identity 4)))

let prop_profile_matches_per_d =
  QCheck2.Test.make ~name:"d-contention profile agrees per d" ~count:100
    QCheck2.Gen.(pair (int_range 2 10) (int_range 1 5))
    (fun (n, count) ->
      let rng = Rng.create ((n * 11) + count) in
      let psi = Gen.random_list ~rng ~n ~count in
      let rho = Perm.random rng n in
      let profile = Contention.d_contention_profile_wrt psi ~rho in
      List.for_all
        (fun d -> profile.(d) = Contention.d_contention_wrt ~d psi ~rho)
        (List.init n (fun i -> i + 1)))

let prop_conjugation_keeps_range =
  QCheck2.Test.make ~name:"contention_wrt stays within [count, count*n]"
    ~count:100
    QCheck2.Gen.(pair (int_range 2 8) (int_range 1 6))
    (fun (n, count) ->
      let rng = Rng.create ((n * 7) + count) in
      let psi = Gen.random_list ~rng ~n ~count in
      let rho = Perm.random rng n in
      let c = Contention.d_contention_wrt ~d:1 psi ~rho in
      c >= count && c <= count * n)

let suite =
  [
    Alcotest.test_case "two-processor example" `Quick
      test_two_processor_example;
    Alcotest.test_case "identity list is worst" `Quick
      test_identity_list_worst;
    Alcotest.test_case "exact within [n, n^2]" `Quick test_exact_bounds;
    Alcotest.test_case "exact dominates each rho" `Quick test_exact_is_max;
    Alcotest.test_case "estimate sandwiched" `Quick test_estimate_sandwich;
    Alcotest.test_case "d=1 contention = contention" `Quick
      test_d_contention_d1;
    Alcotest.test_case "d >= n saturates" `Quick test_d_contention_saturates;
    Alcotest.test_case "d-contention monotone in d" `Quick
      test_d_contention_monotone_in_d;
    Alcotest.test_case "harmonic numbers" `Quick test_harmonic;
    Alcotest.test_case "Lemma 4.1 bound value" `Quick test_bound_lemma41;
    Alcotest.test_case "random lists meet Theorem 4.4 bound" `Quick
      test_random_list_meets_whp_bound;
    Alcotest.test_case "empty list" `Quick test_empty_list;
    Alcotest.test_case "size mismatch rejected" `Quick test_size_mismatch;
    QCheck_alcotest.to_alcotest prop_profile_matches_per_d;
    QCheck_alcotest.to_alcotest prop_conjugation_keeps_range;
  ]
