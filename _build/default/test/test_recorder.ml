open Doall_sim
open Doall_core
open Doall_adversary

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_with adv ~algo ~seed ~p ~t ~d =
  let cfg = Config.make ~seed ~p ~t () in
  Engine.run_packed algo cfg ~d ~adversary:adv ()

let key (m : Metrics.t) =
  (m.Metrics.work, m.Metrics.messages, m.Metrics.sigma, m.Metrics.executions)

let test_record_then_replay_identical () =
  (* Record a stateful lower-bound adversary's decisions; replaying the
     tape against a fresh identical run reproduces the metrics exactly,
     without the expensive clone lookaheads. *)
  let algo () = Algo_pa.make_ran1 () in
  let recording, tape = Recorder.wrap (Lb_randomized.create ()) in
  let m1 = run_with recording ~algo:(algo ()) ~seed:5 ~p:8 ~t:32 ~d:4 in
  check "original completed" true m1.Metrics.completed;
  check "tape non-empty" true (Recorder.decisions tape > 0);
  let m2 = run_with (Recorder.replay tape) ~algo:(algo ()) ~seed:5 ~p:8 ~t:32 ~d:4 in
  check "replay identical" true (key m1 = key m2)

let test_replay_twice () =
  let recording, tape = Recorder.wrap Adversary.uniform_delay in
  let m1 = run_with recording ~algo:(Algo_pa.make_det ()) ~seed:2 ~p:6 ~t:24 ~d:5 in
  let m2 =
    run_with (Recorder.replay tape) ~algo:(Algo_pa.make_det ()) ~seed:2 ~p:6
      ~t:24 ~d:5
  in
  let m3 =
    run_with (Recorder.replay tape) ~algo:(Algo_pa.make_det ()) ~seed:2 ~p:6
      ~t:24 ~d:5
  in
  check "first replay" true (key m1 = key m2);
  check "second replay (fresh cursor)" true (key m1 = key m3)

let test_recording_is_transparent () =
  (* Wrapping must not change the run being recorded. *)
  let plain = run_with Adversary.max_delay ~algo:(Algo_da.make ~q:3 ()) ~seed:1 ~p:7 ~t:21 ~d:6 in
  let recording, _ = Recorder.wrap Adversary.max_delay in
  let taped = run_with recording ~algo:(Algo_da.make ~q:3 ()) ~seed:1 ~p:7 ~t:21 ~d:6 in
  check "transparent" true (key plain = key taped)

let test_replay_with_crashes () =
  let adv =
    Crash.into ~name:"c" (Crash.at_time ~time:2 ~pids:[ 1; 3 ])
  in
  let recording, tape = Recorder.wrap adv in
  let m1 = run_with recording ~algo:(Algo_pa.make_det ()) ~seed:3 ~p:5 ~t:20 ~d:2 in
  let m2 =
    run_with (Recorder.replay tape) ~algo:(Algo_pa.make_det ()) ~seed:3 ~p:5
      ~t:20 ~d:2
  in
  check_int "same crash count" m1.Metrics.crashed m2.Metrics.crashed;
  check "metrics identical" true (key m1 = key m2)

let test_tape_exhaustion_is_safe () =
  (* Replaying a short tape against a longer run falls back to fair
     behaviour and still completes. *)
  let recording, tape = Recorder.wrap Adversary.fair in
  let _ = run_with recording ~algo:(Algo_pa.make_det ()) ~seed:1 ~p:3 ~t:6 ~d:1 in
  let m =
    run_with (Recorder.replay tape) ~algo:(Algo_pa.make_det ()) ~seed:9 ~p:8
      ~t:64 ~d:4
  in
  check "exhausted tape still completes" true m.Metrics.completed

let suite =
  [
    Alcotest.test_case "record then replay (stateful adversary)" `Quick
      test_record_then_replay_identical;
    Alcotest.test_case "one tape, many replays" `Quick test_replay_twice;
    Alcotest.test_case "recording is transparent" `Quick
      test_recording_is_transparent;
    Alcotest.test_case "replay with crashes" `Quick test_replay_with_crashes;
    Alcotest.test_case "tape exhaustion is safe" `Quick
      test_tape_exhaustion_is_safe;
  ]
