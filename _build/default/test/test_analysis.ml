open Doall_analysis

let check = Alcotest.(check bool)
let close ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

let test_log_base () =
  check "log_2 8 = 3" true (close (Bounds.log_base ~base:2.0 8.0) 3.0);
  check "degenerate base guarded" true
    (Float.is_finite (Bounds.log_base ~base:1.0 100.0));
  check "argument floored at 1" true
    (close (Bounds.log_base ~base:2.0 0.5) 0.0)

let test_lower_bound_monotone_in_d () =
  let prev = ref 0.0 in
  List.iter
    (fun d ->
      let lb = Bounds.lower_bound ~p:64 ~t:256 ~d in
      check (Printf.sprintf "monotone at d=%d" d) true (lb >= !prev);
      prev := lb)
    [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]

let test_lower_bound_caps_at_quadratic_shape () =
  (* As d approaches t, the bound approaches p*t (up to constants):
     min(d,t) log_{d+1}(d+t) -> t * ~1. *)
  let p = 32 and t = 128 in
  let at_t = Bounds.lower_bound ~p ~t ~d:t in
  let quadratic = Bounds.oblivious_work ~p ~t in
  check "within constant of p*t" true
    (at_t > 0.5 *. quadratic && at_t <= 2.0 *. quadratic)

let test_lower_bound_at_least_t () =
  check "t term" true (Bounds.lower_bound ~p:1 ~t:100 ~d:1 >= 100.0)

let test_da_upper_decreasing_in_epsilon_for_large_p () =
  let a = Bounds.da_upper ~p:1024 ~t:4096 ~d:16 ~epsilon:0.5 in
  let b = Bounds.da_upper ~p:1024 ~t:4096 ~d:16 ~epsilon:0.25 in
  check "smaller epsilon, smaller bound" true (b < a)

let test_pa_upper_below_oblivious_when_d_small () =
  let p = 256 and t = 256 in
  check "subquadratic at d=1" true
    (Bounds.pa_upper ~p ~t ~d:1 < Bounds.oblivious_work ~p ~t)

let test_upper_bounds_dominate_lower () =
  (* Shape sanity: for matched parameters the PA upper bound (without
     constants) should be at least a constant fraction of the lower
     bound. *)
  List.iter
    (fun d ->
      let lb = Bounds.lower_bound ~p:64 ~t:64 ~d in
      let ub = Bounds.pa_upper ~p:64 ~t:64 ~d in
      check (Printf.sprintf "ub >= lb/4 at d=%d" d) true (ub >= lb /. 4.0))
    [ 1; 4; 16; 64 ]

let test_epsilon_of_q_decreasing () =
  let prev = ref infinity in
  List.iter
    (fun q ->
      let e = Bounds.epsilon_of_q ~q in
      check (Printf.sprintf "eps(q=%d) decreasing" q) true (e <= !prev);
      prev := e)
    [ 4; 8; 16; 64; 256 ]

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  check "mean" true (close s.Stats.mean 2.5);
  check "median" true (close s.Stats.median 2.5);
  check "min" true (close s.Stats.min 1.0);
  check "max" true (close s.Stats.max 4.0);
  check "count" true (s.Stats.count = 4);
  check "stddev" true (close s.Stats.stddev (sqrt (5.0 /. 3.0)))

let test_stats_single () =
  let s = Stats.summarize [ 7.0 ] in
  check "stddev 0" true (close s.Stats.stddev 0.0);
  check "median" true (close s.Stats.median 7.0)

let test_stats_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty")
    (fun () -> ignore (Stats.summarize []))

let test_median_odd () =
  check "odd median" true (close (Stats.median [ 9.0; 1.0; 5.0 ]) 5.0)

let test_linear_fit () =
  let fit = Stats.linear_fit [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  check "slope" true (close fit.Stats.slope 2.0);
  check "intercept" true (close fit.Stats.intercept 1.0);
  check "r2 perfect" true (close fit.Stats.r2 1.0)

let test_loglog_fit_recovers_exponent () =
  let pairs =
    List.map (fun x -> (float_of_int x, 3.0 *. (float_of_int x ** 1.7)))
      [ 1; 2; 4; 8; 16; 32 ]
  in
  let fit = Stats.loglog_fit pairs in
  check "exponent ~1.7" true (Float.abs (fit.Stats.slope -. 1.7) < 0.01)

let test_loglog_drops_nonpositive () =
  let fit =
    Stats.loglog_fit [ (0.0, 5.0); (-1.0, 2.0); (1.0, 2.0); (2.0, 4.0); (4.0, 8.0) ]
  in
  check "slope 1" true (Float.abs (fit.Stats.slope -. 1.0) < 1e-6)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let test_table_render () =
  let tbl = Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Table.add_row tbl [ "1"; "2" ];
  Table.add_row tbl [ "10"; "200" ];
  Table.add_note tbl "a note";
  let s = Table.render tbl in
  check "has title" true (String.length s > 0);
  check "contains note" true (contains s "a note" && contains s "200")

let test_table_row_arity () =
  let tbl = Table.create ~title:"x" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row tbl [ "only-one" ])

let test_table_csv () =
  let tbl = Table.create ~title:"csv" ~columns:[ "x"; "y" ] in
  Table.add_row tbl [ "a,b"; "plain" ];
  let csv = Table.to_csv tbl in
  check "escapes commas" true (contains csv "\"a,b\"")

let test_lemma32_ratio_exact () =
  (* d=1, k=u/2: the ratio telescopes to (u-k)/u = 1/2 exactly. *)
  check "d=1 exact half" true
    (Float.abs (Lemma32.ratio ~u:100 ~d:1 -. 0.5) < 1e-12);
  (* d large: ratio -> e^{-d/(d+1)} -> 1/e *)
  check "d=100, u=10000 near 1/e" true
    (Float.abs (Lemma32.ratio ~u:10000 ~d:100 -. (1.0 /. Float.exp 1.0))
     < 0.01)

let test_lemma32_sandwich () =
  List.iter
    (fun (u, d) ->
      let lower, upper = Lemma32.sandwich ~u ~d in
      let r = Lemma32.ratio ~u ~d in
      check
        (Printf.sprintf "sandwich at u=%d d=%d" u d)
        true
        (lower <= r +. 1e-9 && r <= upper +. 1e-9))
    [ (10, 2); (50, 7); (100, 10); (1000, 31); (12345, 111) ]

let test_lemma32_holds_in_range () =
  Alcotest.(check (option (pair int int)))
    "no counterexample up to 1500" None
    (Lemma32.first_counterexample ~u_max:1500)

let test_lemma32_validation () =
  Alcotest.check_raises "bad d" (Invalid_argument "Lemma32: d >= 1")
    (fun () -> ignore (Lemma32.ratio ~u:10 ~d:0))

let test_fit_recovers_planted_model () =
  (* Plant data from a known shape (3.7x the lower bound) and confirm the
     ranking recovers it with the right constant. *)
  let p = 32 and t = 64 in
  let points =
    List.map
      (fun d -> (d, 3.7 *. Bounds.lower_bound ~p ~t ~d))
      [ 1; 2; 4; 8; 16; 32; 64 ]
  in
  let best = Fit.best ~p ~t points in
  check "planted model wins" true
    (best.Fit.model.Fit.model_name = "lower bound");
  check "constant recovered" true (Float.abs (best.Fit.constant -. 3.7) < 1e-6);
  check "perfect r2" true (best.Fit.r2 > 0.999999)

let test_fit_flat_data () =
  let p = 8 and t = 16 in
  let points = [ (1, 128.0); (4, 128.0); (16, 128.0) ] in
  let best = Fit.best ~p ~t points in
  check "a constant shape wins on flat data" true
    (best.Fit.model.Fit.model_name = "t (delay-free)"
     || best.Fit.model.Fit.model_name = "quadratic p*t")

let test_fit_rank_sorted () =
  let p = 16 and t = 32 in
  let points = List.map (fun d -> (d, float_of_int (t + (p * d)))) [ 1; 4; 16 ] in
  let ranked = Fit.rank ~p ~t points in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Fit.r2 >= b.Fit.r2 && sorted rest
    | _ -> true
  in
  check "sorted by r2" true (sorted ranked);
  check "all candidates present" true
    (List.length ranked = List.length Fit.candidates)

let test_fit_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Fit.fit_one: no points")
    (fun () ->
      ignore (Fit.fit_one (List.hd Fit.candidates) ~p:2 ~t:2 []))

let test_plot_renders_points () =
  let s =
    Plot.render ~width:20 ~height:5
      [ { Plot.label = "w"; points = [ (0.0, 0.0); (10.0, 100.0) ] } ]
  in
  check "non-empty" true (String.length s > 0);
  check "contains mark" true (contains s "*");
  check "contains legend" true (contains s "w");
  check "axis max labelled" true (contains s "100")

let test_plot_two_series_marks () =
  let s =
    Plot.render
      [
        { Plot.label = "a"; points = [ (1.0, 1.0) ] };
        { Plot.label = "b"; points = [ (2.0, 2.0) ] };
      ]
  in
  check "first mark" true (contains s "*");
  check "second mark" true (contains s "+")

let test_plot_log_drops_nonpositive () =
  let s =
    Plot.render ~logx:true ~logy:true
      [ { Plot.label = "only-bad"; points = [ (0.0, 1.0); (-3.0, 2.0) ] } ]
  in
  check "empty when nothing survives" true (s = "")

let test_plot_corner_positions () =
  (* min point lands bottom-left, max point top-right *)
  let s =
    Plot.render ~width:10 ~height:3
      [ { Plot.label = "c"; points = [ (0.0, 0.0); (9.0, 2.0) ] } ]
  in
  let lines = String.split_on_char '\n' s in
  let grid_rows =
    List.filter (fun l -> contains l "|") lines
  in
  (match grid_rows with
   | top :: _ ->
     check "max at top-right" true (String.length top > 0 && contains top "*")
   | [] -> Alcotest.fail "no grid");
  check "mark count ok" true (List.length grid_rows = 3)

let test_mark_cycle () =
  check "cycles" true (Plot.mark_of 0 = Plot.mark_of 8)

let test_cells () =
  check "int" true (Table.cell_int 42 = "42");
  check "float" true (Table.cell_float ~decimals:2 3.14159 = "3.14");
  check "ratio" true (Table.cell_ratio 3.0 2.0 = "1.50");
  check "ratio div0" true (Table.cell_ratio 3.0 0.0 = "-")

let suite =
  [
    Alcotest.test_case "log_base" `Quick test_log_base;
    Alcotest.test_case "lower bound monotone in d" `Quick
      test_lower_bound_monotone_in_d;
    Alcotest.test_case "lower bound ~ p*t at d=t" `Quick
      test_lower_bound_caps_at_quadratic_shape;
    Alcotest.test_case "lower bound >= t" `Quick test_lower_bound_at_least_t;
    Alcotest.test_case "DA bound vs epsilon" `Quick
      test_da_upper_decreasing_in_epsilon_for_large_p;
    Alcotest.test_case "PA bound subquadratic" `Quick
      test_pa_upper_below_oblivious_when_d_small;
    Alcotest.test_case "upper dominates lower (shape)" `Quick
      test_upper_bounds_dominate_lower;
    Alcotest.test_case "epsilon_of_q decreasing" `Quick
      test_epsilon_of_q_decreasing;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "stats single value" `Quick test_stats_single;
    Alcotest.test_case "stats empty rejected" `Quick test_stats_empty;
    Alcotest.test_case "median odd" `Quick test_median_odd;
    Alcotest.test_case "linear fit" `Quick test_linear_fit;
    Alcotest.test_case "loglog fit exponent" `Quick
      test_loglog_fit_recovers_exponent;
    Alcotest.test_case "loglog drops nonpositive" `Quick
      test_loglog_drops_nonpositive;
    Alcotest.test_case "Lemma 3.2: exact values" `Quick
      test_lemma32_ratio_exact;
    Alcotest.test_case "Lemma 3.2: sandwich" `Quick test_lemma32_sandwich;
    Alcotest.test_case "Lemma 3.2: holds in range" `Quick
      test_lemma32_holds_in_range;
    Alcotest.test_case "Lemma 3.2: validation" `Quick test_lemma32_validation;
    Alcotest.test_case "fit recovers planted model" `Quick
      test_fit_recovers_planted_model;
    Alcotest.test_case "fit on flat data" `Quick test_fit_flat_data;
    Alcotest.test_case "fit rank sorted" `Quick test_fit_rank_sorted;
    Alcotest.test_case "fit validation" `Quick test_fit_validation;
    Alcotest.test_case "plot renders points" `Quick test_plot_renders_points;
    Alcotest.test_case "plot series marks" `Quick test_plot_two_series_marks;
    Alcotest.test_case "plot log drops nonpositive" `Quick
      test_plot_log_drops_nonpositive;
    Alcotest.test_case "plot corner positions" `Quick
      test_plot_corner_positions;
    Alcotest.test_case "plot mark cycle" `Quick test_mark_cycle;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table row arity" `Quick test_table_row_arity;
    Alcotest.test_case "table csv escaping" `Quick test_table_csv;
    Alcotest.test_case "cell formatting" `Quick test_cells;
  ]
