(* Emulation trade-off: direct message passing vs replicated shared memory.

   Run with:  dune exec examples/emulation_tradeoff.exe

   Section 1.1 of the paper weighs two routes to asynchronous Do-All:
   re-engineer the shared-memory algorithm for message passing (DA,
   Section 5), or keep the shared-memory algorithm and emulate its
   registers over quorum-replicated storage ([16,19]). This example runs
   both on identical instances and demonstrates the two findings the
   paper reports:

   1. the emulation pays ~d extra steps per memory operation, so its
      work curve in d is much steeper;
   2. the emulation's liveness needs a responsive quorum — crash a
      majority and it spins forever, while DA finishes on the lone
      survivor. *)

open Doall_sim
open Doall_core
open Doall_quorum
open Doall_analysis

let p = 16
let t = 64

let run ?(max_time = 30_000) algo adv_name d =
  let adversary = (Runner.find_adv adv_name).Runner.instantiate ~p ~t ~d in
  let cfg = Config.make ~seed:7 ~p ~t () in
  Engine.run_packed algo cfg ~d ~adversary ~max_time ()

let () =
  Printf.printf
    "Direct (DA) vs quorum-emulated (AWQ) Anderson-Woll, p=%d t=%d\n\n" p t;

  (* 1. The cost of emulated memory operations. *)
  let ds = [ 1; 2; 4; 8; 16; 32 ] in
  let series name algo =
    {
      Plot.label = name;
      points =
        List.map
          (fun d -> (float_of_int d, float_of_int (run algo "max-delay" d).Metrics.work))
          ds;
    }
  in
  let da = series "da-q4 (direct)" (Algo_da.make ~q:4 ()) in
  let awq = series "awq-q4 (quorum emulation)" (Algo_awq.make ~q:4 ()) in
  print_string
    (Plot.render ~logx:true ~logy:true
       ~title:"work vs message delay bound d (log-log)" [ da; awq ]);

  (* 2. The liveness cliff. *)
  print_endline "\nNow crash every processor but one at time t/8:";
  List.iter
    (fun (label, algo) ->
      let m = run algo "crash-all-but-one" 2 in
      Printf.printf "  %-26s completed=%-5b work=%d%s\n" label
        m.Metrics.completed m.Metrics.work
        (if m.Metrics.completed then ""
         else "  <- spins forever: no quorum, no progress (Sec. 1.1 caveat)"))
    [
      ("da-q4 (direct)", Algo_da.make ~q:4 ());
      ("awq-q4 (quorum emulation)", Algo_awq.make ~q:4 ());
    ];
  print_endline
    "\nMoral: the paper's DA re-interpretation keeps the shared-memory\n\
     algorithm's structure but inherits none of the quorum liveness cost."
