(* Quickstart: the five-minute tour of the public API.

   Run with:  dune exec examples/quickstart.exe

   We solve one Do-All instance three ways — the oblivious baseline, the
   progress-tree algorithm DA(q), and the permutation algorithm PaDet —
   under the same adversary, and compare the work and message bills. *)

open Doall_sim
open Doall_core

let () =
  (* An instance: 8 processors, 64 tasks. The algorithms never learn the
     delay bound d; it parameterizes the adversary only. *)
  let p = 8 and t = 64 and d = 4 in

  (* 1. The high-level way: the Runner registry. *)
  print_endline "--- via the Runner registry ---";
  List.iter
    (fun algo ->
      let result = Runner.run ~seed:42 ~algo ~adv:"uniform-delay" ~p ~t ~d () in
      Format.printf "%-8s %a@." algo Metrics.pp result.Runner.metrics)
    [ "trivial"; "da-q4"; "padet" ];

  (* 2. The low-level way: build each piece yourself. *)
  print_endline "";
  print_endline "--- assembled by hand ---";
  let algorithm = Algo_da.make ~q:4 () in
  let adversary = Adversary.uniform_delay in
  let cfg = Config.make ~seed:42 ~p ~t () in
  let metrics = Engine.run_packed algorithm cfg ~d ~adversary () in
  Format.printf "DA(4) under uniform delays: %a@." Metrics.pp metrics;
  Format.printf "effort (W + M) = %d@." (Metrics.effort metrics);

  (* 3. Watch an execution: record a trace and render the timeline. *)
  print_endline "";
  print_endline "--- a small traced run ---";
  let result, trace =
    Runner.run_traced ~seed:7 ~algo:"paran1" ~adv:"max-delay" ~p:4 ~t:12 ~d:3 ()
  in
  Format.printf "%a@." Metrics.pp result.Runner.metrics;
  Format.printf "%a" Trace.pp_timeline
    (trace, 4, result.Runner.metrics.Metrics.sigma + 1);
  print_endline "(# = task performed, o = bookkeeping, H = halted)"
