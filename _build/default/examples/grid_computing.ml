(* Grid computing: a SETI-like batch of independent work units.

   Run with:  dune exec examples/grid_computing.exe

   The paper's motivating scenario (Section 1): a pool of volunteer
   machines cooperates on a batch of idempotent work units. Volunteers
   are wildly heterogeneous (some are 10x slower), the network has
   straggler links, and machines drop out mid-run without saying
   goodbye. Do-All algorithms guarantee every unit is processed and
   bound the redundant computation.

   We model a campaign of 240 work units on 12 volunteers:
   - "harmonic" speeds: volunteer i runs (i+1)x slower than volunteer 0;
   - bimodal network: 20% of packets take the worst-case route;
   - a third of the volunteers quit mid-campaign.

   Compare the naive mirror-everything strategy against DA and PA. *)

open Doall_sim
open Doall_core
open Doall_adversary
open Doall_analysis

let volunteers = 12
let work_units = 240
let worst_latency = 16

(* A campaign-specific adversary assembled from library parts. *)
let flaky_grid () =
  Schedule.combine ~name:"flaky-grid" ~schedule:Schedule.harmonic_speeds
    ~delay:(Delay.bimodal ~slow_fraction:0.2)
    ~crash:
      (Crash.at_time
         ~time:(work_units / 3)
         ~pids:[ 3; 7; 11; 5 ])
    ()

let campaign algo =
  let cfg = Config.make ~seed:2026 ~p:volunteers ~t:work_units () in
  Engine.run_packed algo cfg ~d:worst_latency ~adversary:(flaky_grid ()) ()

let () =
  Printf.printf
    "Campaign: %d work units, %d volunteers (harmonic speeds), 4 dropouts, \
     worst latency %d\n\n"
    work_units volunteers worst_latency;
  let tbl =
    Table.create ~title:"strategies"
      ~columns:
        [
          "strategy"; "work"; "redundant"; "messages"; "wall-clock";
          "survivors";
        ]
  in
  List.iter
    (fun (label, algo) ->
      let m = campaign algo in
      assert (m.Metrics.completed);
      Table.add_row tbl
        [
          label;
          Table.cell_int m.Metrics.work;
          Table.cell_int (Metrics.redundant m);
          Table.cell_int m.Metrics.messages;
          Table.cell_int m.Metrics.sigma;
          Table.cell_int (volunteers - m.Metrics.crashed);
        ])
    [
      ("mirror-all (oblivious)", Algo_trivial.make ());
      ("DA(4) progress tree", Algo_da.make ~q:4 ());
      ("PaRan1", Algo_pa.make_ran1 ());
      ("PaDet", Algo_pa.make_det ());
    ];
  Table.add_note tbl
    "redundant = work units processed more than once; the coordinated \
     algorithms trade messages for an order of magnitude less compute";
  Table.print tbl;
  (* The guarantee that matters operationally: every unit was processed,
     even though a third of the fleet vanished. *)
  Printf.printf
    "\nAll %d units processed under every strategy despite the dropouts.\n"
    work_units
