examples/emulation_tradeoff.ml: Algo_awq Algo_da Config Doall_analysis Doall_core Doall_quorum Doall_sim Engine List Metrics Plot Printf Runner
