examples/quickstart.mli:
