examples/distributed_search.ml: Algo_pa Algorithm Config Crash Delay Doall_adversary Doall_core Doall_sim Doall_workload Engine Format Fun List Metrics Printf Schedule Workload
