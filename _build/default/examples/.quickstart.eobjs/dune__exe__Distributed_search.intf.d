examples/distributed_search.mli:
