examples/quickstart.ml: Adversary Algo_da Config Doall_core Doall_sim Engine Format List Metrics Runner Trace
