examples/emulation_tradeoff.mli:
