examples/grid_computing.ml: Algo_da Algo_pa Algo_trivial Config Crash Delay Doall_adversary Doall_analysis Doall_core Doall_sim Engine List Metrics Printf Schedule Table
