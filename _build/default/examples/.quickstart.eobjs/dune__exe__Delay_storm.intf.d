examples/delay_storm.mli:
