examples/delay_storm.ml: Bounds Doall_analysis Doall_core Doall_sim List Printf Runner Table
