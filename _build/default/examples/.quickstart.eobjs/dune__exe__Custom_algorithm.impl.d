examples/custom_algorithm.ml: Algorithm Bitset Config Doall_analysis Doall_core Doall_sim Engine List Metrics Printf Runner Table
