examples/custom_algorithm.mli:
