(* Distributed search: partition a key space, survive a hostile run.

   Run with:  dune exec examples/distributed_search.exe

   A cluster checks a keyspace partitioned into shards (each shard is
   one idempotent task: "scan shard k, report hits"). We attach a real
   payload via Doall_workload: the engine's trace says *which* shard
   executions happened, and the workload journal replays them against
   actual scan functions, verifying idempotence end-to-end — every shard
   scanned at least once, repeated scans reproducing identical results.

   The adversary is the nastiest the model allows short of the
   lower-bound constructions: omniscient laggard scheduling (it stalls
   whoever is about to do fresh work), worst-case latency on every
   message, and a staggered crash sequence that keeps felling the lowest
   live node (the engine guarantees one survivor). *)

open Doall_sim
open Doall_core
open Doall_adversary
open Doall_workload

let nodes = 10
let shards = 80
let shard_size = 25
let latency_bound = 8

(* Application payload: scan a shard of the keyspace for "hits". *)
let workload =
  Workload.keyspace_scan ~t:shards ~shard_size ~hit:(fun key -> key mod 171 = 0)

let hostile () =
  Schedule.combine ~name:"hostile"
    ~schedule:Schedule.adaptive_laggard ~delay:Delay.maximal
    ~crash:(Crash.staggered ~every:8) ()

let () =
  Printf.printf
    "Scanning %d shards on %d nodes; hostile scheduling, latency %d, \
     staggered crashes.\n\n"
    shards nodes latency_bound;
  let cfg = Config.make ~seed:11 ~record_trace:true ~p:nodes ~t:shards () in
  let algo = Algo_pa.make_ran2 () in
  let (module A : Algorithm.S) = algo in
  let module E = Engine.Make (A) in
  let eng = E.create cfg ~d:latency_bound ~adversary:(hostile ()) in
  let metrics = E.run eng in
  assert (metrics.Metrics.completed);

  (* Replay the trace against the real scan functions. *)
  let journal = Workload.Journal.create workload in
  Workload.Journal.replay_trace journal (E.trace eng);
  let hits =
    List.concat_map snd (Workload.Journal.results journal)
  in
  let expected_hits =
    List.filter (fun k -> k mod 171 = 0)
      (List.init (shards * shard_size) Fun.id)
  in
  Format.printf "%a@." Metrics.pp metrics;
  Printf.printf "nodes lost to crashes: %d (one survivor guaranteed)\n"
    metrics.Metrics.crashed;
  Printf.printf "every shard scanned:   %b\n"
    (Workload.Journal.complete journal);
  Printf.printf "redundant scans:       %d (idempotent: re-scans verified \
                 to reproduce identical results)\n"
    (Workload.Journal.redundant journal);
  Printf.printf "idempotence verified:  %b\n"
    (Workload.Journal.consistent journal);
  Printf.printf "hits found:            %d (expected %d)\n"
    (List.length hits) (List.length expected_hits);
  assert (Workload.Journal.complete journal);
  assert (Workload.Journal.consistent journal);
  assert (List.sort compare hits = expected_hits);
  print_endline "\nSearch complete: results identical to a failure-free run."
