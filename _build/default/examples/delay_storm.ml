(* Delay storm: watch work degrade gracefully as the network slows.

   Run with:  dune exec examples/delay_storm.exe

   The paper's central message, live: the same algorithm binary (which
   never learns d) is run under progressively slower networks. While
   d = o(t) the coordinated algorithms stay far below the oblivious p*t;
   as d approaches t they converge to it — Proposition 2.2 says nothing
   can do better there. The delay-sensitive lower bound of Theorem 3.1
   is printed alongside as the floor no algorithm can beat. *)

open Doall_core
open Doall_analysis

let p = 32
let t = 128

let () =
  Printf.printf
    "Delay storm on p=%d, t=%d: same algorithms, slower and slower network\n\n"
    p t;
  let algos = [ "da-q4"; "paran1"; "padet" ] in
  let tbl =
    Table.create ~title:"work as the delay bound grows (max-delay adversary)"
      ~columns:
        ([ "d" ] @ algos
        @ [ "lower bound"; "oblivious p*t" ])
  in
  let ds = [ 1; 2; 4; 8; 16; 32; 64; 128 ] in
  List.iter
    (fun d ->
      let row =
        List.map
          (fun algo ->
            let r = Runner.run ~seed:5 ~algo ~adv:"max-delay" ~p ~t ~d () in
            Table.cell_int r.Runner.metrics.Doall_sim.Metrics.work)
          algos
      in
      Table.add_row tbl
        (Table.cell_int d :: row
        @ [
            Table.cell_float (Bounds.lower_bound ~p ~t ~d);
            Table.cell_int (p * t);
          ]))
    ds;
  Table.add_note tbl
    "graceful degradation: work rises with d and meets p*t only when d ~ t";
  Table.print tbl;
  (* The subquadratic window in one sentence. *)
  let w_at d =
    (Runner.run ~seed:5 ~algo:"padet" ~adv:"max-delay" ~p ~t ~d ())
      .Runner.metrics
      .Doall_sim.Metrics.work
  in
  Printf.printf
    "\nPaDet does %d work at d=1 (%.0f%% of p*t) but %d at d=%d (%.0f%%): \
     the whole value of delay-sensitive algorithms lives in that gap.\n"
    (w_at 1)
    (100.0 *. float_of_int (w_at 1) /. float_of_int (p * t))
    (w_at t) t
    (100.0 *. float_of_int (w_at t) /. float_of_int (p * t))
